//! Authorization subjects: a user, a set of users, a named group, or all.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A collaborating user's identity. One user per site (paper §3.3), so user
/// ids coincide with `dce_ot::SiteId` values at the `dce-core` layer.
pub type UserId = u32;

/// The subject part `S_i` of an authorization: which users it covers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// Every user in the group (the paper's `All`).
    All,
    /// A single user.
    User(UserId),
    /// An explicit set of users.
    Users(BTreeSet<UserId>),
    /// A named group, resolved against the policy's group table at check
    /// time (groups are managed with `AddObj`-style admin operations).
    Group(String),
}

impl Subject {
    /// Builds a [`Subject::Users`] from an iterator.
    pub fn users(ids: impl IntoIterator<Item = UserId>) -> Self {
        Subject::Users(ids.into_iter().collect())
    }

    /// `true` when the subject covers `user`. `resolve_group` maps group
    /// names to member sets (empty when unknown).
    pub fn covers(&self, user: UserId, resolve_group: impl Fn(&str) -> BTreeSet<UserId>) -> bool {
        match self {
            Subject::All => true,
            Subject::User(u) => *u == user,
            Subject::Users(set) => set.contains(&user),
            Subject::Group(name) => resolve_group(name).contains(&user),
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::All => write!(f, "All"),
            Subject::User(u) => write!(f, "s{u}"),
            Subject::Users(set) => {
                write!(f, "{{")?;
                for (i, u) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "s{u}")?;
                }
                write!(f, "}}")
            }
            Subject::Group(g) => write!(f, "@{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_groups(_: &str) -> BTreeSet<UserId> {
        BTreeSet::new()
    }

    #[test]
    fn all_covers_everyone() {
        assert!(Subject::All.covers(1, no_groups));
        assert!(Subject::All.covers(99, no_groups));
    }

    #[test]
    fn single_user_covers_only_itself() {
        assert!(Subject::User(2).covers(2, no_groups));
        assert!(!Subject::User(2).covers(3, no_groups));
    }

    #[test]
    fn user_set_covers_members() {
        let s = Subject::users([1, 3, 5]);
        assert!(s.covers(3, no_groups));
        assert!(!s.covers(2, no_groups));
    }

    #[test]
    fn group_resolution() {
        let s = Subject::Group("editors".into());
        let resolver = |name: &str| -> BTreeSet<UserId> {
            if name == "editors" {
                [4, 5].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        };
        assert!(s.covers(4, resolver));
        assert!(!s.covers(6, resolver));
        assert!(!Subject::Group("ghosts".into()).covers(4, no_groups));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Subject::All.to_string(), "All");
        assert_eq!(Subject::User(2).to_string(), "s2");
        assert_eq!(Subject::users([2, 1]).to_string(), "{s1,s2}");
        assert_eq!(Subject::Group("g".into()).to_string(), "@g");
    }
}

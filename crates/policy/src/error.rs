//! Policy-layer errors.

use crate::subject::UserId;
use std::fmt;

/// Failures applying administrative operations to a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// `AddAuth`/`DelAuth` addressed a position beyond the authorization
    /// list.
    AuthIndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Current list length.
        len: usize,
    },
    /// `DelAuth` named an authorization that does not match the entry at
    /// the given position (the administrator's view was stale).
    AuthMismatch {
        /// Position addressed.
        index: usize,
    },
    /// `AddUser` for a user already in `S`.
    DuplicateUser(UserId),
    /// `DelUser` for a user not in `S`.
    UnknownUser(UserId),
    /// `AddObj` with a name already registered.
    DuplicateObject(String),
    /// `DelObj` for a name that is not registered.
    UnknownObject(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::AuthIndexOutOfRange { index, len } => {
                write!(f, "authorization index {index} out of range (len {len})")
            }
            PolicyError::AuthMismatch { index } => {
                write!(f, "authorization at index {index} does not match the one to delete")
            }
            PolicyError::DuplicateUser(u) => write!(f, "user s{u} already in the group"),
            PolicyError::UnknownUser(u) => write!(f, "user s{u} not in the group"),
            PolicyError::DuplicateObject(n) => write!(f, "object #{n} already registered"),
            PolicyError::UnknownObject(n) => write!(f, "object #{n} not registered"),
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(PolicyError::AuthIndexOutOfRange { index: 4, len: 2 }
            .to_string()
            .contains("index 4"));
        assert!(PolicyError::DuplicateUser(7).to_string().contains("s7"));
        assert!(PolicyError::UnknownObject("x".into()).to_string().contains("#x"));
        assert!(PolicyError::AuthMismatch { index: 1 }.to_string().contains("index 1"));
        assert!(PolicyError::UnknownUser(3).to_string().contains("s3"));
        assert!(PolicyError::DuplicateObject("o".into()).to_string().contains("#o"));
    }
}

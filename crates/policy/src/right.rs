//! Access rights (paper §3.2: `rR`, `iR`, `dR`, `uR`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One access right. Each right authorizes one kind of operation on the
/// shared document. The paper manages dynamic changes of `iR`, `dR` and
/// `uR`; the read right exists in the model (and is enforced for *joining*
/// a session here) but is outside the scope of dynamic change in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Right {
    /// `rR` — read an element.
    Read,
    /// `iR` — insert an element.
    Insert,
    /// `dR` — delete an element.
    Delete,
    /// `uR` — update an element.
    Update,
}

impl Right {
    /// All four rights, in display order.
    pub const ALL: [Right; 4] = [Right::Read, Right::Insert, Right::Delete, Right::Update];

    /// The three rights whose dynamic change the paper handles.
    pub const DYNAMIC: [Right; 3] = [Right::Insert, Right::Delete, Right::Update];

    /// The right required to perform a cooperative operation kind, if any
    /// (`Nop` needs no right).
    pub fn for_op_kind(kind: dce_document::OpKind) -> Option<Right> {
        match kind {
            dce_document::OpKind::Ins => Some(Right::Insert),
            dce_document::OpKind::Del => Some(Right::Delete),
            dce_document::OpKind::Up => Some(Right::Update),
            dce_document::OpKind::Nop => None,
        }
    }

    /// Paper-style short name.
    pub fn short(&self) -> &'static str {
        match self {
            Right::Read => "rR",
            Right::Insert => "iR",
            Right::Delete => "dR",
            Right::Update => "uR",
        }
    }
}

impl fmt::Display for Right {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_document::OpKind;

    #[test]
    fn op_kinds_map_to_rights() {
        assert_eq!(Right::for_op_kind(OpKind::Ins), Some(Right::Insert));
        assert_eq!(Right::for_op_kind(OpKind::Del), Some(Right::Delete));
        assert_eq!(Right::for_op_kind(OpKind::Up), Some(Right::Update));
        assert_eq!(Right::for_op_kind(OpKind::Nop), None);
    }

    #[test]
    fn short_names_match_paper() {
        assert_eq!(Right::Read.to_string(), "rR");
        assert_eq!(Right::Insert.to_string(), "iR");
        assert_eq!(Right::Delete.to_string(), "dR");
        assert_eq!(Right::Update.to_string(), "uR");
    }

    #[test]
    fn constants_cover_expected_sets() {
        assert_eq!(Right::ALL.len(), 4);
        assert_eq!(Right::DYNAMIC.len(), 3);
        assert!(!Right::DYNAMIC.contains(&Right::Read));
    }
}

//! Administrative operations, requests and the administrative log `L`.

use crate::auth::Authorization;
use crate::error::PolicyError;
use crate::object::DocObject;
use crate::policy::{Action, Policy, PolicyVersion};
use crate::subject::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An administrative operation (paper Definition 3), extended with the
/// `Validate` operation of §4.2 (third scenario): "an additional
/// administrative operation that doesn't modify the policy object but
/// increments the local counter", confirming one cooperative request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdminOp {
    /// Add a user to the subject set `S`.
    AddUser(UserId),
    /// Remove a user from `S` (and from every group).
    DelUser(UserId),
    /// Register a named object in `O`.
    AddObj {
        /// Object name.
        name: String,
        /// Definition.
        object: DocObject,
    },
    /// Unregister a named object.
    DelObj {
        /// Object name.
        name: String,
    },
    /// Insert authorization `auth` at position `pos` of the policy list.
    AddAuth {
        /// 0-based insertion position.
        pos: usize,
        /// The authorization.
        auth: Authorization,
    },
    /// Remove authorization `auth` from position `pos`.
    DelAuth {
        /// 0-based position.
        pos: usize,
        /// The authorization expected there.
        auth: Authorization,
    },
    /// Validate the cooperative request `site#seq`: no policy change, just
    /// a version bump that serializes the request before any later
    /// administrative operation.
    Validate {
        /// Issuing site of the validated request.
        site: UserId,
        /// Serial number of the validated request.
        seq: u64,
    },
    /// Create or replace a named user group (extension: the paper names
    /// groups as subjects but manages membership out of band; we make it
    /// an administrative operation so it is replicated and versioned).
    SetGroup {
        /// Group name.
        name: String,
        /// Member set (replaces any previous definition).
        members: std::collections::BTreeSet<UserId>,
    },
    /// Grant a user the right to *propose* administrative operations,
    /// which the administrator sequences on their behalf — the §7
    /// future-work delegation, realised without giving up the total order
    /// on administrative requests.
    Delegate(UserId),
    /// Withdraw a delegation.
    RevokeDelegation(UserId),
}

impl AdminOp {
    /// `true` for a *restrictive* operation (paper Definition 3: `AddAuth`
    /// of a negative authorization, or any `DelAuth`). We additionally
    /// treat `DelUser` as restrictive — removing a user silently revokes
    /// all their rights, so tentative requests must be re-examined exactly
    /// as for an explicit revocation.
    pub fn is_restrictive(&self) -> bool {
        match self {
            AdminOp::AddAuth { auth, .. } => !auth.is_positive(),
            AdminOp::DelAuth { .. } | AdminOp::DelUser(_) => true,
            _ => false,
        }
    }

    /// `true` for operations a *delegate* (non-administrator holding a
    /// delegation) may propose. Membership of the delegation set itself
    /// stays with the administrator.
    pub fn delegable(&self) -> bool {
        !matches!(
            self,
            AdminOp::Delegate(_) | AdminOp::RevokeDelegation(_) | AdminOp::Validate { .. }
        )
    }

    /// Applies the operation to a policy (no version bump — the request
    /// layer bumps exactly once per administrative request).
    pub fn apply_to(&self, policy: &mut Policy) -> Result<(), PolicyError> {
        match self {
            AdminOp::AddUser(u) => {
                if !policy.add_user(*u) {
                    return Err(PolicyError::DuplicateUser(*u));
                }
                Ok(())
            }
            AdminOp::DelUser(u) => {
                if !policy.del_user(*u) {
                    return Err(PolicyError::UnknownUser(*u));
                }
                Ok(())
            }
            AdminOp::AddObj { name, object } => policy.add_object(name.clone(), object.clone()),
            AdminOp::DelObj { name } => policy.del_object(name).map(|_| ()),
            AdminOp::AddAuth { pos, auth } => policy.add_auth_at(*pos, auth.clone()),
            AdminOp::DelAuth { pos, auth } => policy.del_auth_at(*pos, auth),
            AdminOp::Validate { .. } => Ok(()),
            AdminOp::SetGroup { name, members } => {
                policy.set_group(name.clone(), members.iter().copied());
                Ok(())
            }
            AdminOp::Delegate(u) => {
                policy.add_delegate(*u);
                Ok(())
            }
            AdminOp::RevokeDelegation(u) => {
                policy.remove_delegate(*u);
                Ok(())
            }
        }
    }

    /// `true` when a restrictive operation revokes something `(user,
    /// action)` may rely on — the matching rule `Check_Remote` uses to
    /// reject remote requests against concurrent revocations (paper §4.2,
    /// second scenario). `policy` provides group/object resolution.
    pub fn matches_access(&self, user: UserId, action: &Action, policy: &Policy) -> bool {
        let auth = match self {
            AdminOp::AddAuth { auth, .. } if !auth.is_positive() => auth,
            AdminOp::DelAuth { auth, .. } if auth.is_positive() => auth,
            AdminOp::DelUser(u) => return *u == user,
            _ => return false,
        };
        auth.rights.contains(&action.right)
            && auth.subject.covers(user, |g| policy.groups().get(g).cloned().unwrap_or_default())
            && auth.object.covers(action.pos, &|n| policy.objects().get(n).cloned())
    }
}

impl fmt::Display for AdminOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminOp::AddUser(u) => write!(f, "AddUser(s{u})"),
            AdminOp::DelUser(u) => write!(f, "DelUser(s{u})"),
            AdminOp::AddObj { name, object } => write!(f, "AddObj(#{name}, {object})"),
            AdminOp::DelObj { name } => write!(f, "DelObj(#{name})"),
            AdminOp::AddAuth { pos, auth } => write!(f, "AddAuth({pos}, {auth})"),
            AdminOp::DelAuth { pos, auth } => write!(f, "DelAuth({pos}, {auth})"),
            AdminOp::Validate { site, seq } => write!(f, "Validate({site}#{seq})"),
            AdminOp::SetGroup { name, members } => {
                write!(f, "SetGroup(@{name}, {} members)", members.len())
            }
            AdminOp::Delegate(u) => write!(f, "Delegate(s{u})"),
            AdminOp::RevokeDelegation(u) => write!(f, "RevokeDelegation(s{u})"),
        }
    }
}

/// An administrative request `r = (id, o, v)` (paper §5.1): issued by the
/// administrator, totally ordered by the policy version it produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdminRequest {
    /// Identity of the administrator issuing the request.
    pub admin: UserId,
    /// The version of the policy copy *after* applying this request: the
    /// requests of a session carry versions `1, 2, 3, …`.
    pub version: PolicyVersion,
    /// The administrative operation.
    pub op: AdminOp,
}

impl AdminRequest {
    /// `true` for restrictive requests.
    pub fn is_restrictive(&self) -> bool {
        self.op.is_restrictive()
    }
}

impl fmt::Display for AdminRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}:{}", self.version, self.op)
    }
}

/// The administrative log `L`: every administrative request applied to the
/// local policy copy, in version order. §4.2 (second scenario): "we propose
/// in our model to store administrative operations in a log at every site
/// in order to validate the remote cooperative requests at appropriate
/// context".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdminLog {
    entries: Vec<AdminRequest>,
    /// Positions of the *restrictive* entries, in version order — the only
    /// entries `Check_Remote` can ever return, so its suffix walk skips
    /// everything else. Derived deterministically from `entries` (push
    /// maintains it, `from_entries` rebuilds it).
    restrictive: Vec<usize>,
}

/// Equality and hashing are *behavioral*, not structural: two logs are
/// equal when they agree on the last applied version and on every
/// retained restrictive entry. Administrative requests are totally
/// ordered by the single administrator, so within a session the version
/// number alone identifies the full pushed history; non-restrictive
/// entries (the overwhelming majority: every `Validate`) are never read
/// back by the protocol after application and may legitimately be
/// dropped by [`AdminLog::compact_non_restrictive`] at different times
/// on different replicas. Pruning skew must not read as divergence.
impl PartialEq for AdminLog {
    fn eq(&self, other: &Self) -> bool {
        self.last_version() == other.last_version()
            && self.restrictive_entries().eq(other.restrictive_entries())
    }
}

impl Eq for AdminLog {}

impl std::hash::Hash for AdminLog {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.last_version().hash(state);
        for r in self.restrictive_entries() {
            r.hash(state);
        }
    }
}

impl AdminLog {
    /// Empty log.
    pub fn new() -> Self {
        AdminLog::default()
    }

    /// Behavioral digest of the log (companion to [`Policy::digest`]):
    /// the dedupe key used by state-space exploration layers. Covers the
    /// last version and the restrictive entries — see the `Hash` impl for
    /// why pruning skew must not perturb it.
    ///
    /// [`Policy::digest`]: crate::Policy::digest
    pub fn digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(self, &mut h);
        std::hash::Hasher::finish(&h)
    }

    /// Number of stored requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no administrative request has been applied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates requests in version order.
    pub fn iter(&self) -> impl Iterator<Item = &AdminRequest> {
        self.entries.iter()
    }

    /// Number of *restrictive* entries (the only ones `check_remote`
    /// walks). O(1) — the restrictive index is maintained by `push`.
    /// Observability scrapes this into its `admin_log.restrictive` gauge.
    pub fn restrictive_count(&self) -> usize {
        self.restrictive.len()
    }

    /// Version of the last stored request (0 when empty).
    pub fn last_version(&self) -> PolicyVersion {
        self.entries.last().map(|r| r.version).unwrap_or(0)
    }

    /// Appends a request; versions must be contiguous (total order).
    ///
    /// # Panics
    ///
    /// Panics if `r.version != last_version() + 1` — administrative
    /// requests are totally ordered by construction, so a gap is a protocol
    /// bug, not a recoverable condition.
    pub fn push(&mut self, r: AdminRequest) {
        assert_eq!(
            r.version,
            self.last_version() + 1,
            "administrative requests must arrive in version order"
        );
        if r.is_restrictive() {
            self.restrictive.push(self.entries.len());
        }
        self.entries.push(r);
    }

    /// Rebuilds a log from entries (snapshot restore). Versions must be
    /// strictly ascending; gaps are legal — a snapshot taken after
    /// [`AdminLog::compact_non_restrictive`] ran omits the pruned
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the versions are not strictly ascending.
    pub fn from_entries(entries: Vec<AdminRequest>) -> Self {
        let mut log = AdminLog::new();
        for r in entries {
            assert!(
                r.version > log.last_version(),
                "administrative log entries must be version-ordered"
            );
            if r.is_restrictive() {
                log.restrictive.push(log.entries.len());
            }
            log.entries.push(r);
        }
        log
    }

    /// The retained requests with version strictly greater than `v` — the
    /// administrative operations *concurrent* to a cooperative request
    /// generated at policy version `v`. Versions ascend strictly (but may
    /// gap after compaction), so the suffix start is a binary search.
    pub fn since(&self, v: PolicyVersion) -> &[AdminRequest] {
        let start = self.entries.partition_point(|r| r.version <= v);
        &self.entries[start..]
    }

    /// The retained restrictive entries, in version order.
    fn restrictive_entries(&self) -> impl Iterator<Item = &AdminRequest> {
        self.restrictive.iter().map(|&i| &self.entries[i])
    }

    /// Drops every non-restrictive entry except the newest one, returning
    /// the number dropped. This is the admin-log half of log compaction:
    /// [`AdminLog::check_remote`] — the only protocol reader of the log —
    /// walks restrictive entries exclusively, at *any* remote context
    /// version, so a non-restrictive entry is never consulted again once
    /// applied to the policy. The newest entry survives unconditionally
    /// so [`AdminLog::last_version`] (and with it the [`AdminLog::push`]
    /// contiguity check) is unaffected by pruning. The retained length is
    /// therefore bounded by `restrictive_count() + 1` regardless of how
    /// many validations the session has issued.
    pub fn compact_non_restrictive(&mut self) -> usize {
        let before = self.entries.len();
        let last = self.last_version();
        self.entries.retain(|r| r.is_restrictive() || r.version == last);
        self.restrictive = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_restrictive().then_some(i))
            .collect();
        before - self.entries.len()
    }

    /// The paper's `Check_Remote(q, L)`: a remote cooperative request
    /// granted at its origin under policy version `v` stays granted unless
    /// some *concurrent restrictive* request (version > `v`) revokes the
    /// access it relies on. Returns the denying request, if any.
    ///
    /// Walks only the restrictive index entries past `v` — non-restrictive
    /// requests (the overwhelming majority: every `Validate`) are never
    /// touched.
    pub fn check_remote<'a>(
        &'a self,
        user: UserId,
        action: &Action,
        v: PolicyVersion,
        policy: &Policy,
    ) -> Option<&'a AdminRequest> {
        let lo = self.restrictive.partition_point(|&i| self.entries[i].version <= v);
        self.restrictive[lo..]
            .iter()
            .map(|&i| &self.entries[i])
            .find(|r| r.op.matches_access(user, action, policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::Sign;
    use crate::right::Right;
    use crate::subject::Subject;

    fn revoke_insert(user: UserId) -> AdminOp {
        AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(user),
                DocObject::Document,
                [Right::Insert],
                Sign::Minus,
            ),
        }
    }

    #[test]
    fn restrictive_classification_follows_definition_3() {
        assert!(revoke_insert(1).is_restrictive());
        let grant = AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::grant(Subject::All, DocObject::Document, [Right::Insert]),
        };
        assert!(!grant.is_restrictive());
        let del = AdminOp::DelAuth {
            pos: 0,
            auth: Authorization::grant(Subject::All, DocObject::Document, [Right::Insert]),
        };
        assert!(del.is_restrictive());
        assert!(AdminOp::DelUser(1).is_restrictive());
        assert!(!AdminOp::AddUser(1).is_restrictive());
        assert!(!AdminOp::Validate { site: 1, seq: 1 }.is_restrictive());
    }

    #[test]
    fn apply_membership_ops() {
        let mut p = Policy::new();
        AdminOp::AddUser(1).apply_to(&mut p).unwrap();
        assert!(p.has_user(1));
        assert!(matches!(AdminOp::AddUser(1).apply_to(&mut p), Err(PolicyError::DuplicateUser(1))));
        AdminOp::DelUser(1).apply_to(&mut p).unwrap();
        assert!(!p.has_user(1));
        assert!(matches!(AdminOp::DelUser(1).apply_to(&mut p), Err(PolicyError::UnknownUser(1))));
    }

    #[test]
    fn apply_object_and_auth_ops() {
        let mut p = Policy::new();
        AdminOp::AddObj { name: "title".into(), object: DocObject::Range { from: 1, to: 2 } }
            .apply_to(&mut p)
            .unwrap();
        assert!(p.objects().contains_key("title"));
        let auth =
            Authorization::grant(Subject::All, DocObject::Named("title".into()), [Right::Update]);
        AdminOp::AddAuth { pos: 0, auth: auth.clone() }.apply_to(&mut p).unwrap();
        assert_eq!(p.authorizations().len(), 1);
        AdminOp::DelAuth { pos: 0, auth }.apply_to(&mut p).unwrap();
        assert!(p.authorizations().is_empty());
        AdminOp::DelObj { name: "title".into() }.apply_to(&mut p).unwrap();
        assert!(p.objects().is_empty());
    }

    #[test]
    fn validate_changes_nothing() {
        let mut p = Policy::permissive([1]);
        let before = p.clone();
        AdminOp::Validate { site: 1, seq: 3 }.apply_to(&mut p).unwrap();
        assert_eq!(p, before);
    }

    #[test]
    fn log_orders_by_version_and_slices_since() {
        let mut log = AdminLog::new();
        assert_eq!(log.last_version(), 0);
        log.push(AdminRequest { admin: 0, version: 1, op: AdminOp::AddUser(1) });
        log.push(AdminRequest { admin: 0, version: 2, op: revoke_insert(1) });
        log.push(AdminRequest { admin: 0, version: 3, op: AdminOp::Validate { site: 1, seq: 1 } });
        assert_eq!(log.len(), 3);
        assert_eq!(log.since(0).len(), 3);
        assert_eq!(log.since(1).len(), 2);
        assert_eq!(log.since(3).len(), 0);
        assert_eq!(log.iter().count(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    #[should_panic(expected = "version order")]
    fn log_rejects_version_gap() {
        let mut log = AdminLog::new();
        log.push(AdminRequest { admin: 0, version: 2, op: AdminOp::AddUser(1) });
    }

    /// A log of n entries with r restrictive ones compacts down to r + 1
    /// and keeps answering `since`/`check_remote`/`push` correctly.
    #[test]
    fn compaction_keeps_restrictive_entries_and_the_newest() {
        let mut log = AdminLog::new();
        log.push(AdminRequest { admin: 0, version: 1, op: AdminOp::AddUser(1) });
        log.push(AdminRequest { admin: 0, version: 2, op: revoke_insert(1) });
        for v in 3..=9 {
            log.push(AdminRequest {
                admin: 0,
                version: v,
                op: AdminOp::Validate { site: 1, seq: v },
            });
        }
        let full = log.clone();
        let dropped = log.compact_non_restrictive();
        assert_eq!(dropped, 7); // v1 and v3..=8 go; v2 (restrictive) and v9 (newest) stay
        assert_eq!(log.len(), 2);
        assert_eq!(log.last_version(), 9);
        assert_eq!(log.restrictive_count(), 1);

        // Pruning skew is not divergence: behavioral eq/hash ignore it.
        assert_eq!(log, full);
        assert_eq!(log.digest(), full.digest());

        // check_remote still sees the concurrent revocation at any v.
        let policy = Policy::permissive([1, 2]);
        let ins = Action::new(Right::Insert, Some(2));
        assert!(log.check_remote(1, &ins, 0, &policy).is_some());
        assert!(log.check_remote(1, &ins, 2, &policy).is_none());

        // since() slices by version even across the gap.
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(9).len(), 0);

        // push continues from the surviving last_version.
        log.push(AdminRequest { admin: 0, version: 10, op: AdminOp::AddUser(7) });
        assert_eq!(log.last_version(), 10);

        // A gapped log survives the snapshot round-trip.
        let rebuilt = AdminLog::from_entries(log.iter().cloned().collect());
        assert_eq!(rebuilt, log);
        assert_eq!(rebuilt.last_version(), 10);
        assert_eq!(rebuilt.restrictive_count(), 1);

        // An idempotent second pass drops the now-stale v9 Validate only.
        assert_eq!(log.compact_non_restrictive(), 1);
        assert_eq!(log.compact_non_restrictive(), 0);
    }

    #[test]
    #[should_panic(expected = "version-ordered")]
    fn from_entries_rejects_disorder() {
        AdminLog::from_entries(vec![
            AdminRequest { admin: 0, version: 2, op: AdminOp::AddUser(1) },
            AdminRequest { admin: 0, version: 1, op: AdminOp::AddUser(2) },
        ]);
    }

    #[test]
    fn check_remote_detects_concurrent_revocation() {
        let policy = Policy::permissive([1, 2]);
        let mut log = AdminLog::new();
        log.push(AdminRequest { admin: 0, version: 1, op: revoke_insert(1) });

        let ins = Action::new(Right::Insert, Some(2));
        // Request generated at version 0: the revocation is concurrent.
        assert!(log.check_remote(1, &ins, 0, &policy).is_some());
        // Other users and other rights are unaffected.
        assert!(log.check_remote(2, &ins, 0, &policy).is_none());
        let del = Action::new(Right::Delete, Some(2));
        assert!(log.check_remote(1, &del, 0, &policy).is_none());
        // Request generated after the revocation (v ≥ 1): not concurrent —
        // its origin already checked it against the new policy.
        assert!(log.check_remote(1, &ins, 1, &policy).is_none());
    }

    #[test]
    fn check_remote_detects_deleted_grant() {
        let policy = Policy::permissive([1]);
        let grant = Authorization::grant(Subject::All, DocObject::Document, [Right::Delete]);
        let mut log = AdminLog::new();
        log.push(AdminRequest {
            admin: 0,
            version: 1,
            op: AdminOp::DelAuth { pos: 0, auth: grant },
        });
        let del = Action::new(Right::Delete, Some(1));
        assert!(log.check_remote(1, &del, 0, &policy).is_some());
        let ins = Action::new(Right::Insert, Some(1));
        assert!(log.check_remote(1, &ins, 0, &policy).is_none());
    }

    #[test]
    fn check_remote_detects_user_removal() {
        let policy = Policy::permissive([1, 2]);
        let mut log = AdminLog::new();
        log.push(AdminRequest { admin: 0, version: 1, op: AdminOp::DelUser(2) });
        let ins = Action::new(Right::Insert, Some(1));
        assert!(log.check_remote(2, &ins, 0, &policy).is_some());
        assert!(log.check_remote(1, &ins, 0, &policy).is_none());
    }

    #[test]
    fn validations_never_deny() {
        let policy = Policy::permissive([1]);
        let mut log = AdminLog::new();
        log.push(AdminRequest { admin: 0, version: 1, op: AdminOp::Validate { site: 1, seq: 1 } });
        let ins = Action::new(Right::Insert, Some(1));
        assert!(log.check_remote(1, &ins, 0, &policy).is_none());
    }

    #[test]
    fn displays() {
        assert_eq!(AdminOp::AddUser(3).to_string(), "AddUser(s3)");
        assert_eq!(AdminOp::Validate { site: 2, seq: 9 }.to_string(), "Validate(2#9)");
        let r = AdminRequest { admin: 0, version: 4, op: AdminOp::DelUser(1) };
        assert_eq!(r.to_string(), "r4:DelUser(s1)");
        assert!(AdminOp::DelObj { name: "x".into() }.to_string().contains("#x"));
        let a = Authorization::grant(Subject::All, DocObject::Document, [Right::Read]);
        assert!(AdminOp::AddAuth { pos: 0, auth: a.clone() }.to_string().contains("AddAuth(0"));
        assert!(AdminOp::DelAuth { pos: 0, auth: a }.to_string().contains("DelAuth(0"));
        assert!(AdminOp::AddObj { name: "y".into(), object: DocObject::Document }
            .to_string()
            .contains("#y"));
    }
}

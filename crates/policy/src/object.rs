//! Authorization objects: which part of the shared document is protected.

use dce_document::Position;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The object part `O_i` of an authorization (paper §3.2: "an object can be
/// the whole shared document, an element or a group of elements").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocObject {
    /// The whole shared document (`Doc` in the paper's examples).
    Document,
    /// A single element, addressed by its visible position at check time.
    Element(Position),
    /// A contiguous range of visible positions, inclusive on both ends.
    Range {
        /// First covered position.
        from: Position,
        /// Last covered position.
        to: Position,
    },
    /// A named object registered with `AddObj` (e.g. a section), resolved
    /// against the policy's object table at check time.
    Named(String),
}

impl DocObject {
    /// `true` when this object covers an operation targeting `pos`
    /// (`None` = document-level action such as joining the session).
    /// `resolve` maps named objects to their current definitions.
    pub fn covers(
        &self,
        pos: Option<Position>,
        resolve: &dyn Fn(&str) -> Option<DocObject>,
    ) -> bool {
        match self {
            DocObject::Document => true,
            DocObject::Element(p) => pos == Some(*p),
            DocObject::Range { from, to } => {
                matches!(pos, Some(p) if p >= *from && p <= *to)
            }
            DocObject::Named(name) => match resolve(name) {
                // A named object may not resolve to another name (no
                // recursion): resolve once and match structurally.
                Some(DocObject::Named(_)) | None => false,
                Some(inner) => inner.covers(pos, &|_| None),
            },
        }
    }
}

impl fmt::Display for DocObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocObject::Document => write!(f, "Doc"),
            DocObject::Element(p) => write!(f, "elem[{p}]"),
            DocObject::Range { from, to } => write!(f, "elems[{from}..={to}]"),
            DocObject::Named(n) => write!(f, "#{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_named(_: &str) -> Option<DocObject> {
        None
    }

    #[test]
    fn document_covers_everything() {
        assert!(DocObject::Document.covers(Some(5), &no_named));
        assert!(DocObject::Document.covers(None, &no_named));
    }

    #[test]
    fn element_and_range_cover_positions() {
        assert!(DocObject::Element(3).covers(Some(3), &no_named));
        assert!(!DocObject::Element(3).covers(Some(4), &no_named));
        assert!(!DocObject::Element(3).covers(None, &no_named));
        let r = DocObject::Range { from: 2, to: 4 };
        assert!(r.covers(Some(2), &no_named));
        assert!(r.covers(Some(4), &no_named));
        assert!(!r.covers(Some(5), &no_named));
        assert!(!r.covers(None, &no_named));
    }

    #[test]
    fn named_objects_resolve_once() {
        let resolver = |name: &str| -> Option<DocObject> {
            match name {
                "title" => Some(DocObject::Range { from: 1, to: 3 }),
                "alias" => Some(DocObject::Named("title".into())),
                _ => None,
            }
        };
        assert!(DocObject::Named("title".into()).covers(Some(2), &resolver));
        assert!(!DocObject::Named("title".into()).covers(Some(9), &resolver));
        // No recursive resolution, no unknown names.
        assert!(!DocObject::Named("alias".into()).covers(Some(2), &resolver));
        assert!(!DocObject::Named("ghost".into()).covers(Some(2), &resolver));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DocObject::Document.to_string(), "Doc");
        assert_eq!(DocObject::Element(2).to_string(), "elem[2]");
        assert_eq!(DocObject::Range { from: 1, to: 4 }.to_string(), "elems[1..=4]");
        assert_eq!(DocObject::Named("s".into()).to_string(), "#s");
    }
}

//! Signed authorizations — the entries of the policy list.

use crate::object::DocObject;
use crate::right::Right;
use crate::subject::Subject;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Authorization sign: `+` grants, `−` revokes (paper Definition 2 —
/// "negative authorizations are just used to accelerate the checking
/// process" under first-match semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Right attribution.
    Plus,
    /// Right revocation.
    Minus,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if matches!(self, Sign::Plus) { "+" } else { "-" })
    }
}

/// One policy entry: the quadruple `⟨S_i, O_i, R_i, ω_i⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Authorization {
    /// Covered users.
    pub subject: Subject,
    /// Covered document objects.
    pub object: DocObject,
    /// Covered rights.
    pub rights: BTreeSet<Right>,
    /// Grant or revoke.
    pub sign: Sign,
}

impl Authorization {
    /// Builds an authorization.
    pub fn new(
        subject: Subject,
        object: DocObject,
        rights: impl IntoIterator<Item = Right>,
        sign: Sign,
    ) -> Self {
        Authorization { subject, object, rights: rights.into_iter().collect(), sign }
    }

    /// Convenience: positive authorization.
    pub fn grant(
        subject: Subject,
        object: DocObject,
        rights: impl IntoIterator<Item = Right>,
    ) -> Self {
        Self::new(subject, object, rights, Sign::Plus)
    }

    /// Convenience: negative authorization.
    pub fn revoke(
        subject: Subject,
        object: DocObject,
        rights: impl IntoIterator<Item = Right>,
    ) -> Self {
        Self::new(subject, object, rights, Sign::Minus)
    }

    /// `true` for a positive authorization.
    pub fn is_positive(&self) -> bool {
        matches!(self.sign, Sign::Plus)
    }
}

impl fmt::Display for Authorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {{", self.subject, self.object)?;
        for (i, r) in self.rights.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}, {}⟩", self.sign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_sign() {
        let g = Authorization::grant(Subject::All, DocObject::Document, [Right::Insert]);
        assert!(g.is_positive());
        let r = Authorization::revoke(Subject::User(1), DocObject::Document, [Right::Delete]);
        assert!(!r.is_positive());
    }

    #[test]
    fn display_matches_paper_notation() {
        let a =
            Authorization::grant(Subject::All, DocObject::Document, [Right::Insert, Right::Delete]);
        assert_eq!(a.to_string(), "⟨All, Doc, {iR,dR}, +⟩");
    }
}

//! Differential testing of the indexed decision path against the
//! preserved linear scan.
//!
//! [`Policy::check`] answers through the positional policy index and the
//! memoized decision cache; [`Policy::check_naive`] is the pre-index
//! first-match scan kept verbatim as the oracle. The two must agree on
//! every `(user, action)` — including *across mutations*, which is where
//! the index can go wrong (stale buckets, a cache entry surviving an
//! invalidation). Each proptest case therefore interleaves checks with
//! random policy mutations and re-compares after every step.

use dce_policy::{Action, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![
        Just(Subject::All),
        (1u32..8).prop_map(Subject::User),
        proptest::collection::btree_set(1u32..8, 1..4).prop_map(Subject::Users),
        "[abc]".prop_map(Subject::Group),
    ]
}

fn arb_object() -> impl Strategy<Value = DocObject> {
    prop_oneof![
        Just(DocObject::Document),
        (1usize..15).prop_map(DocObject::Element),
        (1usize..15, 0usize..6).prop_map(|(f, w)| DocObject::Range { from: f, to: f + w }),
        "[xyz]".prop_map(DocObject::Named),
    ]
}

fn arb_rights() -> impl Strategy<Value = BTreeSet<Right>> {
    proptest::collection::btree_set(
        prop_oneof![
            Just(Right::Read),
            Just(Right::Insert),
            Just(Right::Delete),
            Just(Right::Update)
        ],
        1..4,
    )
}

fn arb_auth() -> impl Strategy<Value = Authorization> {
    (arb_subject(), arb_object(), arb_rights(), any::<bool>()).prop_map(|(s, o, r, plus)| {
        Authorization::new(s, o, r, if plus { Sign::Plus } else { Sign::Minus })
    })
}

/// One step of policy churn between check batches.
#[derive(Debug, Clone)]
enum Mutation {
    AddAuth(usize, Authorization),
    DelAuth(usize),
    AddUser(u32),
    DelUser(u32),
    SetGroup(String, Vec<u32>),
    Bump,
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        ((0usize..20), arb_auth()).prop_map(|(i, a)| Mutation::AddAuth(i, a)),
        (0usize..20).prop_map(Mutation::DelAuth),
        (1u32..10).prop_map(Mutation::AddUser),
        (1u32..10).prop_map(Mutation::DelUser),
        ("[abc]", proptest::collection::vec(1u32..10, 0..4))
            .prop_map(|(g, m)| Mutation::SetGroup(g, m)),
        Just(Mutation::Bump),
    ]
}

fn apply(p: &mut Policy, m: &Mutation) {
    match m {
        Mutation::AddAuth(i, a) => {
            let pos = (*i).min(p.authorizations().len());
            p.add_auth_at(pos, a.clone()).unwrap();
        }
        Mutation::DelAuth(i) => {
            // Deleting requires quoting the entry (the paper's admin
            // requests name what they remove); skip when out of range.
            if let Some(a) = p.authorizations().get(*i).cloned() {
                p.del_auth_at(*i, &a).unwrap();
            }
        }
        Mutation::AddUser(u) => {
            p.add_user(*u);
        }
        Mutation::DelUser(u) => {
            p.del_user(*u);
        }
        Mutation::SetGroup(g, members) => p.set_group(g, members.iter().copied()),
        Mutation::Bump => {
            p.bump_version();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn indexed_policy_matches_naive_first_match(
        auths in proptest::collection::vec(arb_auth(), 0..14),
        mutations in proptest::collection::vec(arb_mutation(), 0..12),
        checks in proptest::collection::vec(
            ((1u32..10), (0u8..4), proptest::option::of(1usize..18)),
            1..24
        ),
    ) {
        let mut p = Policy::new();
        for u in 1..8 {
            p.add_user(u);
        }
        p.set_group("a", [1, 2, 3]);
        p.set_group("b", [4]);
        // "c" intentionally undefined.
        p.add_object("x", DocObject::Range { from: 3, to: 9 }).unwrap();
        p.add_object("y", DocObject::Element(2)).unwrap();
        // "z" intentionally undefined.
        for (i, a) in auths.iter().enumerate() {
            p.add_auth_at(i, a.clone()).unwrap();
        }

        // Check, mutate, check again — every batch runs against the same
        // policy twice, so the memo cache is exercised (second hit of a
        // (user, right, pos) triple must come from the cache) and every
        // mutation must flush it.
        let mut step = 0;
        loop {
            for (user, right_tag, pos) in &checks {
                let action = Action::new(Right::ALL[*right_tag as usize], *pos);
                let indexed = p.check(*user, &action);
                let again = p.check(*user, &action);
                let naive = p.check_naive(*user, &action);
                prop_assert_eq!(indexed, naive,
                    "step {}: user {} action {} policy {}", step, user, action, p);
                prop_assert_eq!(again, naive, "cached decision diverged at step {}", step);
            }
            if step >= mutations.len() {
                break;
            }
            apply(&mut p, &mutations[step]);
            step += 1;
        }
    }
}

//! Differential testing of the policy checker against a transparent
//! reference implementation of Definition 2's first-match semantics,
//! written independently (naive, allocation-happy, obviously correct).

use dce_policy::{
    Action, Authorization, Decision, DocObject, Policy, Right, Sign, Subject, UserId,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The reference: resolve groups and named objects eagerly into explicit
/// sets, then scan.
fn reference_check(policy: &Policy, user: UserId, action: &Action) -> Decision {
    if !policy.users().contains(&user) {
        return Decision::DeniedUnknownUser;
    }
    for auth in policy.authorizations() {
        // Subject resolution.
        let subject_hit = match &auth.subject {
            Subject::All => true,
            Subject::User(u) => *u == user,
            Subject::Users(set) => set.contains(&user),
            Subject::Group(name) => {
                policy.groups().get(name).map(|members| members.contains(&user)).unwrap_or(false)
            }
        };
        if !subject_hit {
            continue;
        }
        // Rights.
        if !auth.rights.contains(&action.right) {
            continue;
        }
        // Object resolution (one level of naming, as documented).
        let object = match &auth.object {
            DocObject::Named(name) => match policy.objects().get(name) {
                Some(DocObject::Named(_)) | None => continue,
                Some(other) => other.clone(),
            },
            other => other.clone(),
        };
        let object_hit = match object {
            DocObject::Document => true,
            DocObject::Element(p) => action.pos == Some(p),
            DocObject::Range { from, to } => {
                matches!(action.pos, Some(p) if p >= from && p <= to)
            }
            DocObject::Named(_) => unreachable!("resolved above"),
        };
        if !object_hit {
            continue;
        }
        return match auth.sign {
            Sign::Plus => Decision::Granted,
            Sign::Minus => Decision::DeniedByAuth,
        };
    }
    Decision::DeniedByDefault
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![
        Just(Subject::All),
        (1u32..8).prop_map(Subject::User),
        proptest::collection::btree_set(1u32..8, 1..4).prop_map(Subject::Users),
        "[abc]".prop_map(Subject::Group),
    ]
}

fn arb_object() -> impl Strategy<Value = DocObject> {
    prop_oneof![
        Just(DocObject::Document),
        (1usize..15).prop_map(DocObject::Element),
        (1usize..15, 0usize..6).prop_map(|(f, w)| DocObject::Range { from: f, to: f + w }),
        "[xyz]".prop_map(DocObject::Named),
    ]
}

fn arb_rights() -> impl Strategy<Value = BTreeSet<Right>> {
    proptest::collection::btree_set(
        prop_oneof![
            Just(Right::Read),
            Just(Right::Insert),
            Just(Right::Delete),
            Just(Right::Update)
        ],
        1..4,
    )
}

fn arb_auth() -> impl Strategy<Value = Authorization> {
    (arb_subject(), arb_object(), arb_rights(), any::<bool>()).prop_map(|(s, o, r, pos)| {
        Authorization::new(s, o, r, if pos { Sign::Plus } else { Sign::Minus })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn production_checker_matches_reference(
        auths in proptest::collection::vec(arb_auth(), 0..14),
        users in proptest::collection::btree_set(1u32..8, 1..6),
        checks in proptest::collection::vec(
            ((1u32..9), (0u8..4), proptest::option::of(1usize..18)),
            1..30
        ),
    ) {
        let mut p = Policy::new();
        for u in &users {
            p.add_user(*u);
        }
        p.set_group("a", [1, 2, 3]);
        p.set_group("b", [4]);
        // "c" intentionally undefined.
        p.add_object("x", DocObject::Range { from: 3, to: 9 }).unwrap();
        p.add_object("y", DocObject::Element(2)).unwrap();
        // "z" intentionally undefined.
        for (i, a) in auths.iter().enumerate() {
            p.add_auth_at(i, a.clone()).unwrap();
        }
        for (user, right_tag, pos) in checks {
            let action = Action::new(Right::ALL[right_tag as usize], pos);
            prop_assert_eq!(
                p.check(user, &action),
                reference_check(&p, user, &action),
                "user {} action {} policy {}",
                user, action, p
            );
        }
    }

    #[test]
    fn normalized_policies_match_reference_too(
        auths in proptest::collection::vec(arb_auth(), 0..10),
        checks in proptest::collection::vec(
            ((1u32..8), (0u8..4), proptest::option::of(1usize..18)),
            1..20
        ),
    ) {
        let mut p = Policy::new();
        for u in 1..8 {
            p.add_user(u);
        }
        p.set_group("a", [1, 2]);
        p.add_object("x", DocObject::Range { from: 1, to: 5 }).unwrap();
        for (i, a) in auths.iter().enumerate() {
            p.add_auth_at(i, a.clone()).unwrap();
        }
        let n = dce_policy::normalize(&p);
        for (user, right_tag, pos) in checks {
            let action = Action::new(Right::ALL[right_tag as usize], pos);
            prop_assert_eq!(
                n.check(user, &action),
                reference_check(&p, user, &action),
                "user {} action {}",
                user, action
            );
        }
    }
}

//! Realistic editing workloads.
//!
//! The Fig. 7 harness uses the paper's synthetic mixes (a log that is X %
//! insertions at uniformly random positions). Real editing is nothing like
//! uniform: people type *runs* of characters at a moving cursor,
//! occasionally backspace, and sometimes jump elsewhere. This module
//! models that — useful both for benchmarks that should reflect practice
//! and for stress tests whose operation distributions should not be
//! accidentally easy.

use dce_core::Site;
use dce_document::{Char, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the typing model.
#[derive(Debug, Clone, Copy)]
pub struct TypingModel {
    /// Probability of continuing the current burst at the cursor (vs
    /// jumping to a new random position).
    pub burst_continue: f64,
    /// Probability that a keystroke is a backspace (deletes before the
    /// cursor) rather than a character.
    pub backspace: f64,
    /// Probability that a keystroke overwrites (update) instead of
    /// inserting.
    pub overwrite: f64,
}

impl Default for TypingModel {
    fn default() -> Self {
        // Roughly: long typing runs, ~8 % corrections, a little overwrite.
        TypingModel { burst_continue: 0.92, backspace: 0.08, overwrite: 0.03 }
    }
}

/// A deterministic stream of keystroke operations for one site.
#[derive(Debug)]
pub struct Typist {
    rng: StdRng,
    model: TypingModel,
    cursor: usize, // 1-based insert position
    next_char: u32,
}

impl Typist {
    /// Creates a typist with its own seed.
    pub fn new(seed: u64, model: TypingModel) -> Self {
        Typist { rng: StdRng::seed_from_u64(seed), model, cursor: 1, next_char: 0 }
    }

    /// Produces the next keystroke for `site`'s current document, or
    /// `None` when the randomly chosen action is impossible (empty doc
    /// backspace) — callers just skip those ticks.
    pub fn keystroke(&mut self, site: &Site<Char>) -> Option<Op<Char>> {
        let len = site.document().len();
        // Maybe jump the cursor.
        if !self.rng.gen_bool(self.model.burst_continue) || self.cursor > len + 1 {
            self.cursor = self.rng.gen_range(1..=len + 1);
        }
        let roll: f64 = self.rng.gen();
        if roll < self.model.backspace {
            if self.cursor <= 1 || len == 0 {
                return None;
            }
            let pos = (self.cursor - 1).min(len);
            let elem = *site.document().get(pos)?;
            self.cursor = pos;
            Some(Op::Del { pos, elem })
        } else if roll < self.model.backspace + self.model.overwrite && self.cursor <= len {
            let pos = self.cursor;
            let old = *site.document().get(pos)?;
            self.cursor = pos + 1;
            self.next_char += 1;
            Some(Op::up(pos, old, Self::letter(self.next_char)))
        } else {
            let pos = self.cursor.min(len + 1);
            self.cursor = pos + 1;
            self.next_char += 1;
            Some(Op::ins(pos, Self::letter(self.next_char)))
        }
    }

    fn letter(n: u32) -> char {
        char::from_u32('a' as u32 + (n % 26)).expect("ascii letter")
    }
}

/// Drives `site` through `n` keystrokes of the typing model, returning the
/// requests generated (for broadcast).
pub fn type_burst(
    site: &mut Site<Char>,
    typist: &mut Typist,
    n: usize,
) -> Vec<dce_core::CoopRequest<Char>> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0;
    while out.len() < n && attempts < n * 3 {
        attempts += 1;
        if let Some(op) = typist.keystroke(site) {
            if let Ok(q) = site.generate(op) {
                out.push(q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_core::Message;
    use dce_document::CharDocument;
    use dce_policy::Policy;

    fn site(user: u32) -> Site<Char> {
        Site::new_user(user, 0, CharDocument::new(), Policy::permissive([0, 1, 2]))
    }

    #[test]
    fn typing_produces_plausible_text_growth() {
        let mut s = site(1);
        let mut t = Typist::new(7, TypingModel::default());
        let reqs = type_burst(&mut s, &mut t, 200);
        assert_eq!(reqs.len(), 200);
        // Mostly insertions: the document grows to a substantial fraction.
        assert!(s.document().len() > 120, "len = {}", s.document().len());
    }

    #[test]
    fn heavy_backspace_model_shrinks_output() {
        let mut s = site(1);
        let model = TypingModel { backspace: 0.45, overwrite: 0.0, burst_continue: 0.99 };
        let mut t = Typist::new(9, model);
        type_burst(&mut s, &mut t, 300);
        assert!(s.document().len() < 150, "len = {}", s.document().len());
    }

    #[test]
    fn concurrent_typists_converge() {
        let mut a = site(1);
        let mut b = site(2);
        let mut ta = Typist::new(1, TypingModel::default());
        let mut tb = Typist::new(2, TypingModel::default());
        let qa = type_burst(&mut a, &mut ta, 60);
        let qb = type_burst(&mut b, &mut tb, 60);
        for q in qb {
            a.receive(Message::Coop(q)).unwrap();
        }
        for q in qa {
            b.receive(Message::Coop(q)).unwrap();
        }
        assert_eq!(a.document().to_string(), b.document().to_string());
    }

    #[test]
    fn typist_is_deterministic() {
        let run = || {
            let mut s = site(1);
            let mut t = Typist::new(42, TypingModel::default());
            type_burst(&mut s, &mut t, 100);
            s.document().to_string()
        };
        assert_eq!(run(), run());
    }
}

//! Observability overhead ablation, emitted as JSON.
//!
//! Three measurements on one deterministic chaos session:
//!
//! * **session overhead** — the same seeded `SimNet` workload run with
//!   the handle disabled and then recording into a ring journal; the
//!   final documents must match (recording never changes behavior) and
//!   the wall-clock delta is the cost of full tracing;
//! * **per-emit cost** — a microbench of `ObsHandle::emit` disabled
//!   (one branch on an empty `Option`) vs recording (ring write +
//!   derived counter bump);
//! * **registry snapshot** — the recording run's full metrics report:
//!   `event.*` counters, drain-latency histogram, queue-depth and
//!   policy-memo gauges.
//!
//! Run with `cargo run --release -p dce-bench --bin obs`; writes
//! `results/BENCH_obs.json` at the repository root.

use dce_document::{Char, CharDocument, Op};
use dce_net::sim::{Latency, SimNet};
use dce_net::FaultPlan;
use dce_obs::{EventKind, ObsHandle, ReqId};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0x0B5E_7EED;

/// One seeded chaos session; returns wall-clock time and the converged
/// document so the caller can pin that recording is behavior-neutral.
fn run_session(obs: &ObsHandle) -> (Duration, String) {
    let users: Vec<u32> = (0..4).collect();
    let mut sim: SimNet<Char> = SimNet::group(
        4,
        CharDocument::from_str("observability"),
        Policy::permissive(users),
        SEED,
        Latency::Uniform(1, 60),
    );
    sim.enable_observability(obs.clone());
    sim.set_fault_plan(
        FaultPlan::none().with_drops(0.10).with_duplicates(0.05).with_reordering(0.05, 150),
    );
    sim.enable_reliability();
    let mut rng = StdRng::seed_from_u64(SEED);

    let start = Instant::now();
    for round in 0..12u32 {
        for site in 0..4usize {
            for _ in 0..3 {
                let len = sim.site(site).document().len();
                let op = if len == 0 || rng.gen_bool(0.5) {
                    Op::ins(rng.gen_range(1..=len + 1), (b'a' + (round % 26) as u8) as char)
                } else {
                    let p = rng.gen_range(1..=len);
                    Op::Del { pos: p, elem: *sim.site(site).document().get(p).unwrap() }
                };
                let _ = sim.submit_coop(site, op);
            }
        }
        if rng.gen_bool(0.4) {
            let user = rng.gen_range(1..4u32);
            let right = [Right::Insert, Right::Delete, Right::Update][rng.gen_range(0..3)];
            let sign = if rng.gen_bool(0.5) { Sign::Minus } else { Sign::Plus };
            let _ = sim.submit_admin(
                0,
                AdminOp::AddAuth {
                    pos: 0,
                    auth: Authorization::new(
                        Subject::User(user),
                        DocObject::Document,
                        [right],
                        sign,
                    ),
                },
            );
        }
        if round % 3 == 2 {
            sim.gossip_heartbeats();
        }
        for _ in 0..40 {
            sim.step();
        }
    }
    sim.run_to_quiescence();
    let elapsed = start.elapsed();
    sim.assert_converged(SEED);

    let (mut hits, mut misses) = (0, 0);
    for site in 0..4usize {
        let (h, m) = sim.site(site).policy().memo_stats();
        hits += h;
        misses += m;
    }
    obs.set_gauge("policy.memo_hits", hits);
    obs.set_gauge("policy.memo_misses", misses);
    (elapsed, sim.site(0).document().to_string())
}

/// Best-of-`n` wall-clock for the seeded session (after one warmup).
fn session_ns(obs: &ObsHandle, n: u32) -> (u64, String) {
    let (_, doc) = run_session(obs);
    let mut best = u64::MAX;
    for _ in 0..n {
        let (t, d) = run_session(obs);
        assert_eq!(d, doc, "the seeded session is deterministic");
        best = best.min(t.as_nanos() as u64);
    }
    (best, doc)
}

/// Mean ns per call of `f`, with a warmup pass.
fn time_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    for _ in 0..iters.min(1024) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    // Session overhead: identical seed, handle off vs recording.
    let off = ObsHandle::disabled();
    let (off_ns, doc_off) = session_ns(&off, 3);
    let rec = ObsHandle::recording(1 << 17);
    let (rec_ns, doc_rec) = session_ns(&rec, 3);
    assert_eq!(doc_off, doc_rec, "recording is behavior-neutral");
    assert_eq!(rec.overflowed(), 0, "ring sized for the whole session");
    let overhead_pct = (rec_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0;

    // Per-emit cost, disabled vs recording.
    let id = ReqId::new(1, 1);
    let emit_off = ObsHandle::disabled();
    let emit_off_ns = time_ns(20_000_000, || emit_off.emit(1, 0, EventKind::ReqExecuted { id }));
    let emit_rec = ObsHandle::recording(1 << 12);
    let emit_rec_ns = time_ns(2_000_000, || emit_rec.emit(1, 0, EventKind::ReqExecuted { id }));

    // Fold the ablation numbers into the recording run's registry so the
    // report is one self-contained JSON document.
    rec.set_gauge("bench.session_ns_disabled", off_ns);
    rec.set_gauge("bench.session_ns_recording", rec_ns);
    rec.set_gauge("bench.session_overhead_bp", (overhead_pct * 100.0).round().max(0.0) as u64);
    rec.set_gauge("bench.emit_ps_disabled", (emit_off_ns * 1000.0).round() as u64);
    rec.set_gauge("bench.emit_ps_recording", (emit_rec_ns * 1000.0).round() as u64);

    let report = rec.snapshot();
    let json = report.to_json();
    println!(
        "session: {:.2} ms disabled, {:.2} ms recording ({overhead_pct:+.1}% overhead)",
        off_ns as f64 / 1e6,
        rec_ns as f64 / 1e6,
    );
    println!("emit: {emit_off_ns:.2} ns disabled, {emit_rec_ns:.2} ns recording");
    println!("journal: {} events recorded across the timed sessions", rec.events().len());

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_obs.json");
    std::fs::write(&out, json).expect("write BENCH_obs.json");
    eprintln!("wrote {}", out.display());
}

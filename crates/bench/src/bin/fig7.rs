//! Regenerates the paper's Figure 7: processing time of insert requests as
//! a function of the cooperative log size |H|, for logs containing 0 %,
//! 50 % and 100 % insertions — t1 (`Generate_Coop_Request`), t2
//! (`Receive_Coop_Request`) and their sum against the 100 ms interactivity
//! threshold — plus the SDT/ABT-class comparison the paper quotes
//! ("which is not achieved in SDT and ABT algorithms").
//!
//! Run with `cargo run --release -p dce-bench --bin fig7`.
//! Accepts an optional max |H| argument (default 9000).

use dce_baselines::{QuadraticFlavor, QuadraticSite};
use dce_bench::workload::{type_burst, TypingModel, Typist};
use dce_bench::{bench_policy, build_loaded_site, measure_t1, measure_t2};
use dce_core::Site;
use dce_document::{Char, CharDocument, Op};
use std::time::{Duration, Instant};

fn baseline_receive(h: usize, flavor: QuadraticFlavor) -> Duration {
    let d0: String = ('a'..='z').cycle().take(h + 16).collect();
    let d0 = CharDocument::from_str(&d0);
    let mut site = QuadraticSite::new(1, d0.clone(), flavor);
    let mut remote = QuadraticSite::new(2, d0, flavor);
    let pending = remote.generate(Op::ins(1, 'R'));
    for i in 0..h {
        site.generate(Op::ins(i + 1, 'x'));
    }
    let start = Instant::now();
    site.integrate(&pending);
    start.elapsed()
}

fn main() {
    let max_h: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(9000);
    let reps = 5;

    println!("# Figure 7 — time processing of insert requests");
    println!("# t1 = Generate_Coop_Request, t2 = Receive_Coop_Request (median of {reps})");
    println!("# threshold: t1 + t2 < 100 ms (Li & Li interactivity bound)");
    println!();
    println!(
        "{:>7} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "ins%", "|H|", "t1 (µs)", "t2 (µs)", "t1+t2 (ms)", "<100ms"
    );

    for ins_pct in [0u32, 50, 100] {
        let mut h = 1000;
        while h <= max_h {
            let (site, pending) = build_loaded_site(h, ins_pct, 10, 42 + h as u64);
            let t1 = measure_t1(&site, reps);
            let t2 = measure_t2(&site, &pending, reps);
            let total = t1 + t2;
            println!(
                "{:>7} {:>6} {:>12.1} {:>12.1} {:>12.3} {:>9}",
                ins_pct,
                h,
                t1.as_secs_f64() * 1e6,
                t2.as_secs_f64() * 1e6,
                total.as_secs_f64() * 1e3,
                if total < Duration::from_millis(100) { "yes" } else { "NO" }
            );
            h += 1000;
        }
        println!();
    }

    println!("# Realistic typing workload (burst model, not uniform-random):");
    println!("{:>7} {:>12} {:>12}", "|H|", "t1 (µs)", "t2 (µs)");
    for h in [1000usize, 3000, 5000] {
        let policy = bench_policy(10);
        let mut site: Site<Char> = Site::new_user(1, 0, CharDocument::new(), policy.clone());
        let mut remote: Site<Char> = Site::new_user(2, 0, CharDocument::new(), policy);
        let pending = remote.generate(Op::ins(1, 'R')).expect("granted");
        let mut typist = Typist::new(77, TypingModel::default());
        type_burst(&mut site, &mut typist, h);
        let t1 = dce_bench::measure_t1(&site, reps);
        let t2 = dce_bench::time_on_clones(&site, reps, |s| {
            s.receive(dce_core::Message::Coop(pending.clone())).unwrap()
        });
        println!(
            "{:>7} {:>12.1} {:>12.1}",
            site.engine().log().len(),
            t1.as_secs_f64() * 1e6,
            t2.as_secs_f64() * 1e6
        );
    }
    println!();

    println!("# SDT/ABT-class baselines (reception time only)");
    println!("{:>7} {:>6} {:>12} {:>9}", "algo", "|H|", "t2 (ms)", "<100ms");
    for flavor in [QuadraticFlavor::Abt, QuadraticFlavor::Sdt] {
        let mut h = 1000;
        while h <= max_h {
            let t2 = baseline_receive(h, flavor);
            println!(
                "{:>7} {:>6} {:>12.3} {:>9}",
                format!("{flavor:?}"),
                h,
                t2.as_secs_f64() * 1e3,
                if t2 < Duration::from_millis(100) { "yes" } else { "NO" }
            );
            h += 1000;
        }
        println!();
    }
}

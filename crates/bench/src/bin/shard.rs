//! Sharded-engine scaling gate: per-operation cost must stay flat as the
//! process hosts 1 → 10 000 documents.
//!
//! For each shard count `D` the harness builds one [`dce_core::Engine`]
//! hosting `D` documents and measures two per-document hot paths:
//!
//! * **check_local** — the lock-free [`Engine::check_local`] read:
//!   route-map lookup + CoW policy snapshot check, no shard lock;
//! * **drain** — a remote cooperative request delivered through
//!   [`Engine::receive`] followed by [`Engine::drain_outbox`]: the full
//!   shard-locked integration path.
//!
//! The **gated** measurement routes over a fixed-size hot working set
//! (min(D, 8) documents, round-robin, matched ops per document), so the
//! only thing that varies with `D` is the engine — route-map size and
//! shard count — not the workload's own cache footprint. The gate
//! asserts per-op cost at the largest `D` stays within 2× of the
//! single-document baseline: routing is O(1) and hosting 10 000 idle
//! shards does not tax the per-document protocol.
//!
//! A second, ungated `check_local_uniform` column routes uniformly over
//! all `D` documents. It grows with `D` — that is the workload touching
//! `D` cold policies, i.e. memory-hierarchy cost any per-document design
//! pays — and is recorded for the scaling writeup, not the gate.
//!
//! Run with `cargo run --release -p dce-bench --bin shard`; writes
//! `results/BENCH_shard.json` at the repository root. Pass
//! `--max-docs N` to truncate the sweep (CI runs a reduced sweep).

use dce_core::{DocumentId, Engine, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{Action, Policy, Right};
use std::path::PathBuf;
use std::time::Instant;

/// Documents in the gated hot working set (capped by the shard count).
const WORKING_SET: u64 = 8;
/// Ops delivered per working-set document in the drain bench, so every
/// sweep point integrates against the same per-shard log depth.
const OPS_PER_DOC: u32 = 1_000;

/// Deterministic xorshift; no clocks, no global RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Mean ns per call of `f`, with a warmup pass.
fn time_ns<F: FnMut() -> u64>(iters: u32, mut f: F) -> f64 {
    let mut sink = 0u64;
    for _ in 0..iters.min(32) {
        sink = sink.wrapping_add(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn engine_with(docs: u64) -> Engine<Char> {
    let engine = Engine::new_admin(0);
    let d0 = CharDocument::from_str("shard bench seed");
    engine
        .create_documents(
            (0..docs).map(|i| (DocumentId::new(i), d0.clone(), Policy::permissive([0, 1, 2]))),
        )
        .expect("fresh engine hosts the sweep's documents");
    engine
}

/// Gated: `check_local` round-robin over the hot working set.
fn bench_check_local(engine: &Engine<Char>, docs: u64) -> f64 {
    let action = Action::new(Right::Insert, Some(1));
    let working = docs.min(WORKING_SET);
    let mut i = 0u64;
    time_ns(200_000, || {
        let doc = DocumentId::new(i % working);
        i += 1;
        u64::from(engine.check_local(doc, &action).expect("hosted document").granted())
    })
}

/// Ungated: `check_local` over a uniformly random document — the whole
/// shard population is the working set, so this column grows with `D`.
fn bench_check_local_uniform(engine: &Engine<Char>, docs: u64) -> f64 {
    let action = Action::new(Right::Insert, Some(1));
    let mut rng = Rng(0x5eed_0001);
    time_ns(200_000, || {
        let doc = DocumentId::new(rng.below(docs));
        u64::from(engine.check_local(doc, &action).expect("hosted document").granted())
    })
}

/// Gated: one remote coop request received + outbox drained, round-robin
/// over the hot working set with `OPS_PER_DOC` ops per document. The
/// schedule — document choice plus a causally-ready message from that
/// document's producer replica — is precomputed, so the timed loop is
/// pure engine work.
fn bench_drain(engine: &Engine<Char>, docs: u64) -> f64 {
    let d0 = CharDocument::from_str("shard bench seed");
    let policy = Policy::permissive([0, 1, 2]);
    let working = docs.min(WORKING_SET);
    let iters = OPS_PER_DOC * working as u32;
    let mut producers: Vec<Site<Char>> =
        (0..working).map(|_| Site::new_user(1, 0, d0.clone(), policy.clone())).collect();
    let total = iters as usize + 32; // time_ns warms up with up to 32 calls
    let schedule: Vec<(DocumentId, Message<Char>)> = (0..total)
        .map(|i| {
            let doc = i as u64 % working;
            let msg = Message::Coop(producers[doc as usize].generate(Op::ins(1, 'x')).unwrap());
            (DocumentId::new(doc), msg)
        })
        .collect();
    let mut next = 0usize;
    time_ns(iters, || {
        let (doc, ref msg) = schedule[next];
        next += 1;
        engine.receive(doc, msg.clone()).expect("hosted document accepts the op");
        engine.drain_outbox(doc).len() as u64
    })
}

fn main() {
    let mut max_docs = 10_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-docs" => {
                max_docs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-docs takes a positive integer");
            }
            other => {
                eprintln!("unknown flag {other}; usage: shard [--max-docs N]");
                std::process::exit(2);
            }
        }
    }

    let sweep: Vec<u64> =
        [1u64, 10, 100, 1_000, 10_000].into_iter().filter(|&d| d <= max_docs).collect();
    let mut rows = Vec::new();
    for &docs in &sweep {
        let engine = engine_with(docs);
        let check_ns = bench_check_local(&engine, docs);
        let uniform_ns = bench_check_local_uniform(&engine, docs);
        let drain_ns = bench_drain(&engine, docs);
        println!(
            "docs={docs:>6}  check_local={check_ns:>7.1} ns/op  \
             uniform={uniform_ns:>7.1} ns/op  drain={drain_ns:>8.0} ns/op"
        );
        rows.push((docs, check_ns, uniform_ns, drain_ns));
    }

    let (base_check, base_drain) = (rows[0].1, rows[0].3);
    let &(top_docs, top_check, _, top_drain) = rows.last().unwrap();
    let check_ratio = top_check / base_check;
    let drain_ratio = top_drain / base_drain;
    let flat = check_ratio <= 2.0 && drain_ratio <= 2.0;

    let mut json = String::from("{\n  \"sweep\": [\n");
    for (i, (docs, check_ns, uniform_ns, drain_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"docs\": {docs}, \"check_local_ns_per_op\": {check_ns:.1}, \
             \"check_local_uniform_ns_per_op\": {uniform_ns:.1}, \
             \"drain_ns_per_op\": {drain_ns:.0} }}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"gate\": {{\n    \"baseline_docs\": {},\n    \"top_docs\": {top_docs},\n    \
         \"check_local_ratio\": {check_ratio:.2},\n    \"drain_ratio\": {drain_ratio:.2},\n    \
         \"limit\": 2.0,\n    \"flat\": {flat}\n  }}\n}}\n",
        rows[0].0
    ));
    print!("{json}");

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_shard.json");
    std::fs::write(&out, &json).expect("write BENCH_shard.json");
    eprintln!("wrote {}", out.display());

    assert!(
        flat,
        "per-op cost is not flat across the shard sweep: \
         check_local {check_ratio:.2}x, drain {drain_ratio:.2}x (limit 2.0x)"
    );
}

//! Trace-correlation cost, emitted as JSON.
//!
//! Three measurements, mirroring the `obs` bin's ablation style:
//!
//! * **merge throughput** — events/second through the journal merger,
//!   on the real journal of a seeded chaos session and on a large
//!   synthetic multi-site journal (the acceptance floor is 100k
//!   events/s);
//! * **span-build cost** — ns/event to roll a merged trace up into
//!   request spans and publish the derived metrics;
//! * **flight-recorder overhead** — the same seeded session with plain
//!   recording vs recording plus an armed flight recorder and the sim
//!   time source; arming must stay within 5% of plain recording (the
//!   hook is only touched on failure).
//!
//! Run with `cargo run --release -p dce-bench --bin trace`; writes
//! `results/BENCH_trace.json` at the repository root.

use dce_document::{Char, CharDocument, Op};
use dce_net::sim::{Latency, SimNet};
use dce_net::FaultPlan;
use dce_obs::{Event, EventKind, ObsHandle, ReqId};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use dce_trace::{build_spans, merge_events, merge_journals, publish};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0x7A_CE5EED;

/// One seeded chaos session (same workload shape as the `obs` bin).
/// Returns wall-clock time and the converged document.
fn run_session(obs: &ObsHandle) -> (Duration, String) {
    let users: Vec<u32> = (0..4).collect();
    let mut sim: SimNet<Char> = SimNet::group(
        4,
        CharDocument::from_str("correlation"),
        Policy::permissive(users),
        SEED,
        Latency::Uniform(1, 60),
    );
    sim.enable_observability(obs.clone());
    sim.set_fault_plan(
        FaultPlan::none().with_drops(0.10).with_duplicates(0.05).with_reordering(0.05, 150),
    );
    sim.enable_reliability();
    let mut rng = StdRng::seed_from_u64(SEED);

    let start = Instant::now();
    for round in 0..12u32 {
        for site in 0..4usize {
            for _ in 0..3 {
                let len = sim.site(site).document().len();
                let op = if len == 0 || rng.gen_bool(0.5) {
                    Op::ins(rng.gen_range(1..=len + 1), (b'a' + (round % 26) as u8) as char)
                } else {
                    let p = rng.gen_range(1..=len);
                    Op::Del { pos: p, elem: *sim.site(site).document().get(p).unwrap() }
                };
                let _ = sim.submit_coop(site, op);
            }
        }
        if rng.gen_bool(0.4) {
            let user = rng.gen_range(1..4u32);
            let right = [Right::Insert, Right::Delete, Right::Update][rng.gen_range(0..3)];
            let sign = if rng.gen_bool(0.5) { Sign::Minus } else { Sign::Plus };
            let _ = sim.submit_admin(
                0,
                AdminOp::AddAuth {
                    pos: 0,
                    auth: Authorization::new(
                        Subject::User(user),
                        DocObject::Document,
                        [right],
                        sign,
                    ),
                },
            );
        }
        if round % 3 == 2 {
            sim.gossip_heartbeats();
        }
        for _ in 0..40 {
            sim.step();
        }
    }
    sim.run_to_quiescence();
    let elapsed = start.elapsed();
    sim.assert_converged(SEED);
    (elapsed, sim.site(0).document().to_string())
}

/// Best-of-`n` wall-clock for the seeded session (after one warmup).
fn session_ns(obs: &ObsHandle, n: u32) -> (u64, String) {
    let (_, doc) = run_session(obs);
    let mut best = u64::MAX;
    for _ in 0..n {
        let (t, d) = run_session(obs);
        assert_eq!(d, doc, "the seeded session is deterministic");
        best = best.min(t.as_nanos() as u64);
    }
    (best, doc)
}

/// A large synthetic multi-site journal: `requests` full lifecycles
/// (generate + execute at the origin, receive + execute at every other
/// of `sites` sites), interleaved round-robin like a real broadcast.
fn synthetic_journal(sites: u32, requests: u64) -> Vec<Event> {
    let mut events = Vec::new();
    let mut seqs = vec![0u64; sites as usize];
    let mut lamport = 0u64;
    let mut push = |seqs: &mut Vec<u64>, lamport: &mut u64, site: u32, kind: EventKind| {
        seqs[site as usize] += 1;
        *lamport += 1;
        events.push(Event {
            site,
            doc: 0,
            seq: seqs[site as usize],
            version: 0,
            lamport: *lamport,
            at: *lamport,
            kind,
        });
    };
    for n in 1..=requests {
        let origin = (n % u64::from(sites)) as u32;
        let id = ReqId::new(origin, n / u64::from(sites) + 1);
        push(&mut seqs, &mut lamport, origin, EventKind::ReqGenerated { id });
        push(&mut seqs, &mut lamport, origin, EventKind::ReqExecuted { id });
        for remote in 0..sites {
            if remote == origin {
                continue;
            }
            push(&mut seqs, &mut lamport, remote, EventKind::ReqReceived { id });
            push(&mut seqs, &mut lamport, remote, EventKind::ReqExecuted { id });
        }
    }
    events
}

/// Best-of-`n` merge wall-clock over `journals`, with a warmup.
fn merge_ns(journals: &[Vec<Event>], n: u32) -> u64 {
    let warm = merge_journals(journals);
    assert!(warm.is_acyclic());
    let mut best = u64::MAX;
    for _ in 0..n {
        let start = Instant::now();
        let t = merge_journals(journals);
        best = best.min(start.elapsed().as_nanos() as u64);
        std::hint::black_box(t);
    }
    best
}

fn main() {
    // A real chaos journal for merge + span measurements — captured from
    // ONE session on a dedicated handle: reusing a handle across repeats
    // would collide request ids across runs and poison the merge.
    let cap = ObsHandle::recording(1 << 17);
    let (_, _) = run_session(&cap);
    let journal = cap.events();
    assert!(!journal.is_empty());
    assert_eq!(cap.overflowed(), 0, "ring sized for the whole session");

    // Plain-recording session timing (journal contents unused).
    let rec = ObsHandle::recording(1 << 17);
    let (plain_ns, doc_plain) = session_ns(&rec, 3);

    // Merge throughput: the real journal, and a 200k-event synthetic one.
    let real_merge_ns = merge_ns(std::slice::from_ref(&journal), 5);
    let real_eps = journal.len() as f64 / (real_merge_ns as f64 / 1e9);
    let synth = synthetic_journal(8, 25_000);
    let synth_len = synth.len(); // 16 events per request lifecycle = 400k
    let synth_merge_ns = merge_ns(std::slice::from_ref(&synth), 3);
    let synth_eps = synth_len as f64 / (synth_merge_ns as f64 / 1e9);
    assert!(
        real_eps >= 100_000.0 && synth_eps >= 100_000.0,
        "merge throughput below the 100k events/s floor: real {real_eps:.0}, synthetic {synth_eps:.0}"
    );

    // Span-build + publish cost per event.
    let trace = merge_events(&journal);
    let spans_start = Instant::now();
    let mut span_count = 0usize;
    const SPAN_ITERS: u32 = 20;
    for _ in 0..SPAN_ITERS {
        let report = build_spans(&trace);
        span_count = report.spans.len();
        std::hint::black_box(report);
    }
    let span_ns_per_event =
        spans_start.elapsed().as_nanos() as f64 / f64::from(SPAN_ITERS) / journal.len() as f64;

    // Flight-recorder overhead: plain recording vs recording + armed
    // recorder. The session converges, so the hook never fires; the cost
    // is the arm itself (one mutex store) — it must be noise.
    let armed = ObsHandle::recording(1 << 17);
    dce_trace::arm(&armed, SEED, std::env::temp_dir().join("dce-bench-flight"));
    let (armed_ns, doc_armed) = session_ns(&armed, 3);
    assert_eq!(doc_plain, doc_armed, "arming the recorder is behavior-neutral");
    let overhead_pct = (armed_ns as f64 - plain_ns as f64) / plain_ns as f64 * 100.0;
    assert!(
        overhead_pct <= 5.0,
        "armed flight recorder costs {overhead_pct:.1}% over plain recording (budget 5%)"
    );

    // Fold everything into one registry, including the trace.* derived
    // metrics from the real session's spans.
    let out_obs = ObsHandle::metrics_only();
    publish(&build_spans(&trace), &out_obs);
    out_obs.set_gauge("bench.journal_events", journal.len() as u64);
    out_obs.set_gauge("bench.spans", span_count as u64);
    out_obs.set_gauge("bench.merge_eps_real", real_eps.round() as u64);
    out_obs.set_gauge("bench.merge_eps_synthetic", synth_eps.round() as u64);
    out_obs.set_gauge("bench.synthetic_events", synth_len as u64);
    out_obs.set_gauge("bench.span_build_ps_per_event", (span_ns_per_event * 1000.0).round() as u64);
    out_obs.set_gauge("bench.session_ns_recording", plain_ns);
    out_obs.set_gauge("bench.session_ns_armed", armed_ns);
    out_obs.set_gauge("bench.flight_overhead_bp", (overhead_pct * 100.0).round().max(0.0) as u64);

    println!(
        "merge: {:.0} events/s real ({} events), {:.0} events/s synthetic ({} events)",
        real_eps,
        journal.len(),
        synth_eps,
        synth_len
    );
    println!("spans: {span_count} requests, {span_ns_per_event:.1} ns/event to build");
    println!(
        "flight: {:.2} ms plain, {:.2} ms armed ({overhead_pct:+.1}% overhead)",
        plain_ns as f64 / 1e6,
        armed_ns as f64 / 1e6,
    );

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_trace.json");
    std::fs::write(&out, out_obs.snapshot().to_json()).expect("write BENCH_trace.json");
    eprintln!("wrote {}", out.display());
}

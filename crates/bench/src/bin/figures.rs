//! Textual replay of the paper's qualitative figures (Figs. 1–5):
//! each scenario is executed on the real stack and the resulting states
//! printed next to what the paper reports.
//!
//! Run with `cargo run -p dce-bench --bin figures`.

use dce_baselines::NaiveSite;
use dce_core::{Flag, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};

fn doc(s: &str) -> CharDocument {
    CharDocument::from_str(s)
}

fn revoke(right: Right, user: u32) -> AdminOp {
    AdminOp::AddAuth {
        pos: 0,
        auth: Authorization::new(Subject::User(user), DocObject::Document, [right], Sign::Minus),
    }
}

fn grant(right: Right, user: u32) -> AdminOp {
    AdminOp::AddAuth {
        pos: 0,
        auth: Authorization::new(Subject::User(user), DocObject::Document, [right], Sign::Plus),
    }
}

fn fig1() {
    println!("== Figure 1 — serialization of concurrent cooperative operations ==");
    println!("   initial state \"efecte\"; o1 = Ins(2,'f') at site 1, o2 = Del(6,'e') at site 2");

    // (a) incorrect integration: no transformation.
    let mut n1 = NaiveSite::new(doc("efecte"));
    let mut n2 = NaiveSite::new(doc("efecte"));
    let o1 = n1.generate(Op::<Char>::ins(2, 'f')).unwrap();
    let o2 = n2.generate(Op::<Char>::del(6, 'e')).unwrap();
    n1.integrate(&o2);
    n2.integrate(&o1);
    println!(
        "   (a) without OT:  site1 = {:?}  site2 = {:?}   -> paper: \"effece\" vs \"effect\" (divergence)",
        n1.document().to_string(),
        n2.document().to_string()
    );

    // (b) correct integration with IT.
    let mut e1 = dce_ot::Engine::new(1, doc("efecte"));
    let mut e2 = dce_ot::Engine::new(2, doc("efecte"));
    let q1 = e1.generate(Op::ins(2, 'f')).unwrap();
    let q2 = e2.generate(Op::del(6, 'e')).unwrap();
    e1.integrate(&q2).unwrap();
    e2.integrate(&q1).unwrap();
    println!(
        "   (b) with IT:     site1 = {:?}  site2 = {:?}   -> paper: both \"effect\"",
        e1.document().to_string(),
        e2.document().to_string()
    );
    println!();
}

fn group(initial: &str) -> (Site<Char>, Site<Char>, Site<Char>) {
    let p = Policy::permissive([0, 1, 2]);
    (
        Site::new_admin(0, doc(initial), p.clone()),
        Site::new_user(1, 0, doc(initial), p.clone()),
        Site::new_user(2, 0, doc(initial), p),
    )
}

fn fig2() {
    println!("== Figure 2 — revocation concurrent with an insertion ==");
    let (mut adm, mut s1, mut s2) = group("abc");
    let r = adm.admin_generate(revoke(Right::Insert, 1)).unwrap();
    let q = s1.generate(Op::ins(1, 'x')).unwrap();
    println!(
        "   adm revokes s1's insert right; s1 concurrently performs Ins(1,'x') -> {:?}",
        s1.document().to_string()
    );
    adm.receive(Message::Coop(q.clone())).unwrap();
    println!(
        "   adm receives the insert after the revocation: state {:?} (ignored)",
        adm.document().to_string()
    );
    s2.receive(Message::Coop(q)).unwrap();
    println!(
        "   s2 receives the insert first: state {:?} (accepted tentatively)",
        s2.document().to_string()
    );
    s2.receive(Message::Admin(r.clone())).unwrap();
    s1.receive(Message::Admin(r)).unwrap();
    println!(
        "   after the revocation reaches everyone: adm = {:?}, s1 = {:?}, s2 = {:?}",
        adm.document().to_string(),
        s1.document().to_string(),
        s2.document().to_string()
    );
    println!("   -> paper: the tentative insert is undone everywhere; all converge to \"abc\"");
    println!();
}

fn fig3() {
    println!("== Figure 3 — necessity of the administrative log ==");
    let (mut adm, mut s1, mut s2) = group("abc");
    let r1 = adm.admin_generate(revoke(Right::Delete, 2)).unwrap();
    let q = s2.generate(Op::del(1, 'a')).unwrap();
    println!(
        "   adm revokes s2's delete right; s2 concurrently performs Del(1,'a') -> {:?}",
        s2.document().to_string()
    );
    let r2 = adm.admin_generate(grant(Right::Delete, 2)).unwrap();
    println!("   adm then grants the right again (policy looks permissive once more)");
    s1.receive(Message::Admin(r1.clone())).unwrap();
    s1.receive(Message::Admin(r2.clone())).unwrap();
    s1.receive(Message::Coop(q.clone())).unwrap();
    println!(
        "   s1 checks the late delete against L (not the current policy): state {:?}, flag {:?}",
        s1.document().to_string(),
        s1.flag_of(q.ot.id)
    );
    adm.receive(Message::Coop(q)).unwrap();
    s2.receive(Message::Admin(r1)).unwrap();
    s2.receive(Message::Admin(r2)).unwrap();
    println!(
        "   final states: adm = {:?}, s1 = {:?}, s2 = {:?} -> paper: all \"abc\"",
        adm.document().to_string(),
        s1.document().to_string(),
        s2.document().to_string()
    );
    println!();
}

fn fig4() {
    println!("== Figure 4 — validation prevents rejecting legal operations ==");
    let (mut adm, mut s1, mut s2) = group("abc");
    let q = s1.generate(Op::ins(1, 'x')).unwrap();
    adm.receive(Message::Coop(q.clone())).unwrap();
    let validation = adm.drain_outbox();
    println!("   s1 performs Ins(1,'x'); adm accepts it and issues a validation");
    let r = adm.admin_generate(revoke(Right::Insert, 1)).unwrap();
    println!("   adm then revokes s1's insert right");
    s2.receive(Message::Admin(r.clone())).unwrap();
    println!(
        "   s2 receives the revocation FIRST: applied? version = {} (deferred: waits for the validation)",
        s2.version()
    );
    for m in validation.clone() {
        s2.receive(m).unwrap();
    }
    s2.receive(Message::Coop(q.clone())).unwrap();
    println!(
        "   after insert + validation arrive: s2 = {:?}, flag {:?}, version {}",
        s2.document().to_string(),
        s2.flag_of(q.ot.id),
        s2.version()
    );
    for m in validation {
        s1.receive(m).unwrap();
    }
    s1.receive(Message::Admin(r)).unwrap();
    println!(
        "   final states: adm = {:?}, s1 = {:?}, s2 = {:?} -> paper: all \"xabc\" (legal op preserved)",
        adm.document().to_string(),
        s1.document().to_string(),
        s2.document().to_string()
    );
    println!();
}

fn fig5() {
    println!("== Figure 5 — full illustrative scenario ==");
    let (mut adm, mut s1, mut s2) = group("abc");
    let q0 = adm.generate(Op::ins(2, 'y')).unwrap();
    let q1 = s1.generate(Op::del(2, 'b')).unwrap();
    let q2 = s2.generate(Op::ins(3, 'x')).unwrap();
    println!(
        "   q0 = Ins(2,'y') @adm, q1 = Del(2,'b') @s1, q2 = Ins(3,'x') @s2 (pairwise concurrent)"
    );

    // Step 1 integration orders from the paper: adm sees q2 then q1 and
    // reaches "ayxc"; s1 sees q2 then q0 ("ayxc"); s2 sees only q1 for now
    // ("axc" — it generates q4 before q0 arrives, exactly as in Fig. 5).
    adm.receive(Message::Coop(q2.clone())).unwrap();
    adm.receive(Message::Coop(q1.clone())).unwrap();
    let val_adm_1 = adm.drain_outbox();
    s1.receive(Message::Coop(q2)).unwrap();
    s1.receive(Message::Coop(q0.clone())).unwrap();
    s2.receive(Message::Coop(q1)).unwrap();
    println!(
        "   step 1: adm = {:?}, s1 = {:?}, s2 = {:?} (paper: \"ayxc\", \"ayxc\", \"axc\")",
        adm.document().to_string(),
        s1.document().to_string(),
        s2.document().to_string()
    );

    // Step 2: s1 deletes 'a', s2 deletes 'x' (before seeing q0), adm
    // revokes s1's delete right.
    let q3 = s1.generate(Op::del(1, 'a')).unwrap();
    let q4 = s2.generate(Op::del(2, 'x')).unwrap();
    s2.receive(Message::Coop(q0)).unwrap();
    let r = adm
        .admin_generate(AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(1),
                DocObject::Document,
                [Right::Delete],
                Sign::Minus,
            ),
        })
        .unwrap();
    println!("   step 2: q3 = Del(1,'a') @s1, q4 = Del(2,'x') @s2, r = revoke dR from s1 @adm");

    // Step 3: full delivery.
    for m in val_adm_1 {
        s1.receive(m.clone()).unwrap();
        s2.receive(m).unwrap();
    }
    adm.receive(Message::Coop(q3.clone())).unwrap();
    adm.receive(Message::Coop(q4.clone())).unwrap();
    let val_adm_2 = adm.drain_outbox();
    s1.receive(Message::Coop(q4)).unwrap();
    s2.receive(Message::Coop(q3.clone())).unwrap();
    for m in val_adm_2 {
        s1.receive(m.clone()).unwrap();
        s2.receive(m).unwrap();
    }
    s1.receive(Message::Admin(r.clone())).unwrap();
    s2.receive(Message::Admin(r)).unwrap();

    println!(
        "   final: adm = {:?} | s1 = {:?} | s2 = {:?}",
        adm.document().to_string(),
        s1.document().to_string(),
        s2.document().to_string()
    );
    println!(
        "   q3 flags: adm {:?}, s1 {:?}, s2 {:?} (paper: invalid everywhere)",
        adm.flag_of(q3.ot.id),
        s1.flag_of(q3.ot.id),
        s2.flag_of(q3.ot.id)
    );
    println!("   -> paper: all sites converge to \"ayc\" with q3 rejected/undone");
    assert_eq!(adm.document().to_string(), "ayc");
    assert_eq!(s1.document().to_string(), "ayc");
    assert_eq!(s2.document().to_string(), "ayc");
    assert_eq!(adm.flag_of(q3.ot.id), Some(Flag::Invalid));
    println!();
}

fn main() {
    fig1();
    fig2();
    fig3();
    fig4();
    fig5();
    println!("all figure scenarios reproduced the paper's outcomes");
}

//! Empirical validation of the paper's §5.2 asymptotic-complexity claims:
//!
//! * `Generate_Coop_Request`: O(2|H| + |P|)  — linear in the log and policy;
//! * `Receive_Coop_Request`:  O(|L| + 2|H|)  — linear in the admin log too;
//! * `Undo`: the paper bounds its transposition-based undo by O(|H|²); our
//!   never-removed-cells buffer reverts effects in place, so enforcement
//!   scales linearly — reported as a measured improvement.
//!
//! Run with `cargo run --release -p dce-bench --bin complexity`.

use dce_bench::{build_loaded_site, measure_t1, measure_t2};
use dce_core::{Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use std::time::Instant;

fn main() {
    let reps = 5;

    println!("# Generate/Receive scaling in |H| (50% insertions, |P| = 11)");
    println!("{:>7} {:>12} {:>12}", "|H|", "t1 (µs)", "t2 (µs)");
    let mut prev: Option<(f64, f64)> = None;
    for h in [500usize, 1000, 2000, 4000, 8000] {
        let (site, pending) = build_loaded_site(h, 50, 10, 7);
        let t1 = measure_t1(&site, reps).as_secs_f64() * 1e6;
        let t2 = measure_t2(&site, &pending, reps).as_secs_f64() * 1e6;
        print!("{h:>7} {t1:>12.1} {t2:>12.1}");
        if let Some((p1, p2)) = prev {
            print!("   (x{:.2}, x{:.2} for 2x |H|)", t1 / p1, t2 / p2);
        }
        println!();
        prev = Some((t1, t2));
    }

    println!();
    println!("# Check_Local scaling in the policy size |P| (|H| = 1000)");
    println!("{:>7} {:>12}", "|P|", "t1 (µs)");
    for p in [1usize, 10, 100, 1000] {
        let (site, _) = build_loaded_site(1000, 50, p, 9);
        let t1 = measure_t1(&site, reps).as_secs_f64() * 1e6;
        println!("{:>7} {t1:>12.1}", p + 1);
    }

    println!();
    println!("# Check_Remote scaling in the administrative log |L| (|H| = 1000)");
    println!("{:>7} {:>12}", "|L|", "t2 (µs)");
    for l in [0usize, 10, 100, 1000] {
        let (site, pending) = loaded_with_admin_log(1000, l);
        let t2 = dce_bench::time_on_clones(&site, reps, |s| {
            s.receive(Message::Coop(pending.clone())).unwrap()
        })
        .as_secs_f64()
            * 1e6;
        println!("{l:>7} {t2:>12.1}");
    }

    println!();
    println!("# Wire message size vs group size N (honesty check for the state-vector");
    println!("# substitution — the paper's dependency-tree requests are O(1) in N;");
    println!("# ours carry a clock entry per *active writer*, see DESIGN.md §3)");
    println!("{:>7} {:>14}", "N", "bytes/coop msg");
    for n in [2u32, 8, 32, 128] {
        println!("{n:>7} {:>14}", coop_message_size(n));
    }

    println!();
    println!("# Retroactive enforcement (undo) — all |H| requests tentative and revoked");
    println!("{:>7} {:>12}", "|H|", "undo (µs)");
    for h in [250usize, 500, 1000, 2000, 4000] {
        let us = measure_enforcement(h);
        println!("{h:>7} {us:>12.1}");
    }
}

/// Size of a wire-encoded cooperative request after `n` sites have each
/// contributed one operation (the clock then has `n` entries).
fn coop_message_size(n: u32) -> usize {
    let users: Vec<u32> = (0..n).collect();
    let policy = Policy::permissive(users);
    let mut sites: Vec<Site<Char>> = (0..n)
        .map(|u| {
            if u == 0 {
                Site::new_admin(0, CharDocument::from_str("x"), policy.clone())
            } else {
                Site::new_user(u, 0, CharDocument::from_str("x"), policy.clone())
            }
        })
        .collect();
    // Every site generates one op; site 0 integrates them all.
    let mut reqs = Vec::new();
    for s in sites.iter_mut().skip(1) {
        reqs.push(s.generate(Op::ins(1, 'a')).unwrap());
    }
    for q in &reqs {
        sites[0].receive(Message::Coop(q.clone())).unwrap();
    }
    let _ = sites[0].drain_outbox();
    let q = sites[0].generate(Op::ins(1, 'z')).unwrap();
    dce_net::wire::encode_message(&Message::Coop(q)).len()
}

/// A site with |H| = `h` and an admin log of length `l` (validations).
fn loaded_with_admin_log(h: usize, l: usize) -> (Site<Char>, dce_core::CoopRequest<Char>) {
    let (mut site, _) = build_loaded_site(h, 50, 0, 21);
    let d0: String = ('a'..='z').cycle().take(h + 16).collect();
    let policy = dce_bench::bench_policy(0);
    let mut adm: Site<Char> = Site::new_admin(0, CharDocument::from_str(&d0), policy.clone());
    for i in 0..l {
        let r = adm.admin_generate(AdminOp::Validate { site: 9, seq: i as u64 + 1 }).unwrap();
        // Deliver by hand: validations for unknown requests are only
        // version bumps at the benchmark site... they must wait for their
        // targets, so use AddUser churn instead for pure |L| growth.
        let _ = r;
    }
    // Pure |L| growth via membership churn (never restrictive).
    for i in 0..l {
        let r = adm.admin_generate(AdminOp::AddUser(100 + i as u32)).unwrap();
        site.receive(Message::Admin(r)).unwrap();
    }
    // The pending remote request was checked at version 0: Check_Remote
    // scans the whole concurrent suffix of L.
    let mut remote: Site<Char> = Site::new_user(2, 0, CharDocument::from_str(&d0), policy);
    let pending = remote.generate(Op::ins(1, 'R')).unwrap();
    (site, pending)
}

/// Builds a user site with `h` tentative insertions, then times the
/// enforcement triggered by a revocation of the insert right.
fn measure_enforcement(h: usize) -> f64 {
    let policy = Policy::permissive([0, 1]);
    let mut site: Site<Char> = Site::new_user(1, 0, CharDocument::new(), policy.clone());
    for i in 0..h {
        site.generate(Op::ins(1, char::from(b'a' + (i % 26) as u8))).unwrap();
    }
    let mut adm: Site<Char> = Site::new_admin(0, CharDocument::new(), policy);
    let r = adm
        .admin_generate(AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(1),
                DocObject::Document,
                [Right::Insert],
                Sign::Minus,
            ),
        })
        .unwrap();
    let start = Instant::now();
    site.receive(Message::Admin(r)).unwrap();
    let el = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(site.document().len(), 0, "everything undone");
    el
}

//! The §1 motivation experiment: local replicated checks vs a central
//! authorization server, across round-trip times.
//!
//! "when adding an access control layer, high responsiveness is lost
//! because every update must be granted by some authorization coming from
//! a distant user (as a central server)" — this harness quantifies that.
//!
//! Run with `cargo run --release -p dce-bench --bin latency`.

use dce_baselines::{CentralClient, CentralServer};
use dce_core::Site;
use dce_document::{Char, CharDocument, Op};
use dce_policy::Policy;
use std::time::Instant;

const EDITS: usize = 500;

fn main() {
    println!("# Per-edit authorization latency: replicated (paper) vs central server");
    println!("# workload: {EDITS} single-character insertions");
    println!();

    // Replicated: the real stack, measuring pure local generate time.
    let policy = Policy::permissive([0, 1]);
    let mut site: Site<Char> = Site::new_user(1, 0, CharDocument::new(), policy);
    let start = Instant::now();
    for i in 0..EDITS {
        site.generate(Op::ins(i + 1, 'x')).unwrap();
    }
    let local = start.elapsed();
    println!(
        "{:>24} {:>14.3} ms total {:>12.1} µs/edit   (no round trips)",
        "replicated (this paper)",
        local.as_secs_f64() * 1e3,
        local.as_secs_f64() * 1e6 / EDITS as f64
    );

    // Central server at various RTTs: the waiting time is simulated
    // (deterministic), the check itself is measured.
    for rtt in [1u64, 10, 50, 100] {
        let server = CentralServer::new(Policy::permissive([1]));
        let mut client: CentralClient<Char> =
            CentralClient::new(1, CharDocument::new(), server.clone(), rtt);
        let start = Instant::now();
        for i in 0..EDITS {
            assert!(client.edit(Op::ins(i + 1, 'x')));
        }
        let check_time = start.elapsed();
        let total_ms = client.waited_ms as f64 + check_time.as_secs_f64() * 1e3;
        println!(
            "{:>24} {:>14.3} ms total {:>12.1} µs/edit   ({} round trips @ {rtt} ms RTT)",
            format!("central server {rtt}ms"),
            total_ms,
            total_ms * 1e3 / EDITS as f64,
            EDITS
        );
    }

    println!();
    println!("# -> the replicated model's check cost is microseconds and independent of RTT;");
    println!("#    the central model pays one RTT per edit and serializes on the policy lock.");
}

//! Before/after numbers for the indexed hot paths, emitted as JSON.
//!
//! Two ablations, each pitting the preserved pre-refactor implementation
//! against the indexed one on the same workload:
//!
//! * **policy_check** — `Check_Local` on a policy with 1 000 + 1 ordered
//!   authorizations: [`Policy::check_naive`] (the linear first-match
//!   scan) vs [`Policy::check`] (positional index + decision memo);
//! * **drain** — reception of a 1 000-request causal chain delivered in
//!   reverse order: [`ScanSite`] (the Algorithm-1 fixpoint scan) vs
//!   [`Site`] (the causal-readiness scheduler).
//!
//! Run with `cargo run --release -p dce-bench --bin hotpaths`; writes
//! `results/BENCH_hotpaths.json` at the repository root.

use dce_core::{Message, ScanSite, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{Action, Authorization, DocObject, Policy, Right, Sign, Subject};
use std::path::PathBuf;
use std::time::Instant;

/// The `check_local` worst case from `benches/policy_check.rs`: `n`
/// irrelevant range entries ahead of the permissive catch-all.
fn policy_with(n: usize) -> Policy {
    let mut p = Policy::permissive([1, 2, 3]);
    for i in 0..n {
        let auth = Authorization::new(
            Subject::User(2),
            DocObject::Range { from: i + 10, to: i + 20 },
            [Right::Update],
            Sign::Plus,
        );
        p.add_auth_at(0, auth).unwrap();
    }
    p
}

/// Mean ns per call of `f`, with a warmup pass.
fn time_ns<F: FnMut() -> u64>(iters: u32, mut f: F) -> (f64, u64) {
    let mut sink = 0u64;
    for _ in 0..iters.min(16) {
        sink = sink.wrapping_add(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    (start.elapsed().as_nanos() as f64 / f64::from(iters), sink)
}

fn bench_policy_check(n: usize) -> (f64, f64) {
    let p = policy_with(n);
    let action = Action::new(Right::Insert, Some(2));
    assert_eq!(p.check_naive(1, &action), p.check(1, &action), "paths agree on the workload");
    let (naive_ns, s1) = time_ns(2_000, || u64::from(p.check_naive(1, &action).granted()));
    let (indexed_ns, s2) = time_ns(200_000, || u64::from(p.check(1, &action).granted()));
    std::hint::black_box((s1, s2));
    (naive_ns, indexed_ns)
}

fn bench_drain(n: usize) -> (f64, f64) {
    let d0 = CharDocument::from_str("");
    let policy = Policy::permissive([0, 1, 2]);
    let mut producer: Site<Char> = Site::new_user(1, 0, d0.clone(), policy.clone());
    let mut msgs: Vec<Message<Char>> =
        (0..n).map(|i| Message::Coop(producer.generate(Op::ins(i + 1, 'x')).unwrap())).collect();
    msgs.reverse();
    let observer: Site<Char> = Site::new_user(2, 0, d0, policy);

    let (scan_ns, a) = time_ns(6, || {
        let mut site = ScanSite::new(observer.clone());
        for m in &msgs {
            site.receive(m.clone()).unwrap();
        }
        assert_eq!(site.queued(), 0);
        assert_eq!(site.site().document().len(), n, "scan integrated the full chain");
        n as u64
    });
    let (sched_ns, b) = time_ns(40, || {
        let mut site = observer.clone();
        for m in &msgs {
            site.receive(m.clone()).unwrap();
        }
        assert_eq!(site.queued(), 0);
        assert_eq!(site.document().len(), n, "scheduler integrated the full chain");
        n as u64
    });
    std::hint::black_box((a, b));
    (scan_ns, sched_ns)
}

fn main() {
    let auths = 1000usize;
    let (naive_ns, indexed_ns) = bench_policy_check(auths);
    let queued = 1000usize;
    let (scan_ns, sched_ns) = bench_drain(queued);

    let json = format!(
        "{{\n  \"policy_check\": {{\n    \"auths\": {auths},\n    \"naive_ns_per_check\": {naive_ns:.1},\n    \"indexed_ns_per_check\": {indexed_ns:.1},\n    \"speedup\": {:.1}\n  }},\n  \"drain_scaling\": {{\n    \"queued_requests\": {queued},\n    \"scan_ns_per_replay\": {scan_ns:.0},\n    \"scheduler_ns_per_replay\": {sched_ns:.0},\n    \"speedup\": {:.1}\n  }}\n}}\n",
        naive_ns / indexed_ns,
        scan_ns / sched_ns,
    );
    print!("{json}");

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_hotpaths.json");
    std::fs::write(&out, json).expect("write BENCH_hotpaths.json");
    eprintln!("wrote {}", out.display());
}

//! Batched vs per-request drain on a parked causal chain, as JSON.
//!
//! The workload is the shape the `BatchPartition` cache exists for: a
//! consumer site holds `L` locally-generated entries, then a producer's
//! causally-chained run of `K` remote requests arrives. Request `i`'s
//! context is request `i-1`'s context plus request `i-1` itself, and all
//! `K` are concurrent with the consumer's `L` local entries, so:
//!
//! * **per_request** — the chain is delivered in causal order, one
//!   drain per arrival. Each integration rebuilds the canonical-log
//!   partition from scratch: request `i` moves its `i-1` chain
//!   ancestors left past the `L` concurrent entries, `O(K^2 * L)`
//!   transpositions across the run;
//! * **batched** — the chain is delivered in *reverse*, so requests
//!   `K..2` park and request `1` wakes the whole run in a single drain.
//!   The partition built for the first request is advanced across the
//!   rest ([`BatchPartition::absorb`]), `O(K * L)` total.
//!
//! Both paths must land on the same replica — the digest is asserted
//! before any number is reported (the differential oracle for the cache
//! lives in `dce-core/tests/batch_differential.rs`; this bin sizes the
//! win the oracle licenses).
//!
//! Run with `cargo run --release -p dce-bench --bin batch`; writes
//! `results/BENCH_batch.json` at the repository root.

use dce_core::{Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::Policy;
use std::path::PathBuf;
use std::time::Instant;

/// Mean ns per call of `f`, with a warmup pass.
fn time_ns<F: FnMut() -> u64>(iters: u32, mut f: F) -> (f64, u64) {
    let mut sink = 0u64;
    for _ in 0..iters.min(4) {
        sink = sink.wrapping_add(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    (start.elapsed().as_nanos() as f64 / f64::from(iters), sink)
}

/// A consumer with `local` concurrent entries and the producer's
/// `chain`-long causal run, in generation order.
fn workload(local: usize, chain: usize) -> (Site<Char>, Vec<Message<Char>>) {
    let d0 = CharDocument::from_str("base");
    let policy = Policy::permissive([0, 1, 2]);
    let mut producer: Site<Char> = Site::new_user(1, 0, d0.clone(), policy.clone());
    let msgs: Vec<Message<Char>> = (0..chain)
        .map(|i| Message::Coop(producer.generate(Op::ins(i + 1, 'x')).unwrap()))
        .collect();
    let mut consumer: Site<Char> = Site::new_user(2, 0, d0, policy);
    for _ in 0..local {
        consumer.generate(Op::ins(1, 'y')).unwrap();
        consumer.drain_outbox();
    }
    (consumer, msgs)
}

/// (per_request_ns, batched_ns) for one (L, K) point, digest-checked.
fn bench_point(local: usize, chain: usize) -> (f64, f64) {
    let (consumer, msgs) = workload(local, chain);
    let expect_len = consumer.document().len() + chain;

    // Digest parity first: the two delivery orders are observably
    // indistinguishable, so the timings below compare like with like.
    let digest_of = |order: &[Message<Char>]| {
        let mut site = consumer.clone();
        for m in order {
            site.receive(m.clone()).unwrap();
        }
        assert_eq!(site.queued(), 0);
        assert_eq!(site.document().len(), expect_len);
        site.replica_digest()
    };
    let reversed: Vec<Message<Char>> = msgs.iter().rev().cloned().collect();
    assert_eq!(digest_of(&msgs), digest_of(&reversed), "delivery orders diverged");

    let (per_request_ns, a) = time_ns(12, || {
        let mut site = consumer.clone();
        for m in &msgs {
            site.receive(m.clone()).unwrap();
        }
        assert_eq!(site.queued(), 0);
        chain as u64
    });
    let (batched_ns, b) = time_ns(40, || {
        let mut site = consumer.clone();
        for m in &reversed {
            site.receive(m.clone()).unwrap();
        }
        assert_eq!(site.queued(), 0);
        chain as u64
    });
    std::hint::black_box((a, b));
    (per_request_ns, batched_ns)
}

fn main() {
    let local = 512usize;
    let mut rows = String::new();
    let mut headline = 0.0f64;
    for (i, chain) in [16usize, 64, 256].into_iter().enumerate() {
        let (per_request_ns, batched_ns) = bench_point(local, chain);
        let speedup = per_request_ns / batched_ns;
        if chain == 64 {
            headline = speedup;
        }
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\n      \"chain\": {chain},\n      \"per_request_ns_per_replay\": {per_request_ns:.0},\n      \"batched_ns_per_replay\": {batched_ns:.0},\n      \"speedup\": {speedup:.1}\n    }}"
        ));
        eprintln!("L={local} K={chain}: per_request {per_request_ns:.0} ns, batched {batched_ns:.0} ns, {speedup:.1}x");
    }

    let json = format!(
        "{{\n  \"workload\": {{\n    \"concurrent_local_entries\": {local},\n    \"note\": \"causally chained remote run, delivered in causal order (one drain per request) vs reversed (parked, one batched drain)\"\n  }},\n  \"points\": [\n{rows}\n  ],\n  \"speedup_at_64\": {headline:.1}\n}}\n"
    );
    print!("{json}");

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_batch.json");
    std::fs::write(&out, json).expect("write BENCH_batch.json");
    eprintln!("wrote {}", out.display());
    assert!(headline >= 5.0, "batched drain under 5x at K=64: {headline:.1}");
}

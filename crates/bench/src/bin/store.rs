//! Durable-store gate: WAL append cost across the three fsync policies,
//! and cold-start recovery of a 100 000-op journal racing the full
//! snapshot transfer a store-less deployment would need instead.
//!
//! Two measurements, one gate:
//!
//! * **append** — ns per journaled record through [`DocStore::append`]
//!   under `EveryRecord`, `EveryN(64)` and `EveryMs(5)`. Appends are
//!   write-through under every policy (the record reaches the kernel
//!   before the call returns); the policy only moves the `fsync`, so
//!   the spread across the three rows is the measured price of the
//!   power-failure window.
//! * **recovery** — a journaled admin engine executes 100 000 bounded
//!   edits (auto-snapshots every 5 000 records), the process "dies",
//!   and a cold [`EngineStore`] open + `recover_doc` rebuilds the
//!   replica from the newest snapshot plus a replay of the log suffix.
//!   The same final state is then pushed through
//!   [`dce_net::snapshot::transfer`] — the full encode + decode a
//!   re-joining replica pays when there is no local store — and the
//!   gate asserts local recovery beats the transfer re-run. A second,
//!   ungated row deletes the newest snapshot first, forcing the
//!   worst-case recovery — a full 5 000-record interval replayed
//!   through the OT path — and is recorded for the recovery-time
//!   table, not the gate: it is the price of crashing one record
//!   before a snapshot lands, bounded by the snapshot cadence and
//!   independent of total log length.
//!
//! Run with `cargo run --release -p dce-bench --bin store`; writes
//! `results/BENCH_store.json` at the repository root. Pass
//! `--log-records N` to shrink the journal (CI runs a reduced log;
//! use a multiple of 5 000 so the journal ends on a snapshot
//! boundary, as a stability-horizon server's does).

use dce_core::{DocumentId, Engine, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_obs::ObsHandle;
use dce_policy::Policy;
use dce_store::{DocStore, EngineStore, FsyncPolicy, Record, Recovery, StoreConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The benched document.
const DOC: DocumentId = DocumentId(3);
/// Records between automatic snapshots in the recovery workload.
const SNAPSHOT_EVERY: u64 = 5_000;
/// The document stays within this many characters, so neither append
/// nor replay cost drifts with log depth.
const DOC_CAP: usize = 96;

/// Deterministic xorshift; no clocks, no global RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn genesis() -> Site<Char> {
    Site::new_admin(0, CharDocument::from_str("store bench seed"), Policy::permissive([0, 1]))
}

/// ns per append of a representative remote-coop record under `policy`.
fn bench_append(dir: &Path, policy: FsyncPolicy, iters: u32) -> f64 {
    let cfg = StoreConfig {
        fsync: policy,
        snapshot_every: u64::MAX,
        auto_snapshot: false,
        retain_snapshots: 2,
    };
    let (mut store, _recovery) =
        DocStore::<Char>::open(dir, DOC, 0, 0, cfg, ObsHandle::default(), genesis)
            .expect("fresh append scratch dir");
    // The record a session server journals on every delivered edit: one
    // member's insert, write-ahead of application.
    let mut producer = Site::new_user(
        1,
        0,
        CharDocument::from_str("store bench seed"),
        Policy::permissive([0, 1]),
    );
    let msg = Message::Coop(producer.generate(Op::ins(1, 'x')).expect("permissive policy"));
    let rec = Record::Remote(msg);
    for _ in 0..32 {
        store.append(&rec.borrow()).expect("warmup append");
    }
    let start = Instant::now();
    for _ in 0..iters {
        store.append(&rec.borrow()).expect("append");
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    store.sync().expect("final sync");
    ns
}

/// The next bounded edit: inserts while short, deletes while long, a
/// coin toss in between — the op stream a single admin writer journals.
fn bounded_edit(rng: &mut Rng, mirror: &mut Vec<char>) -> Op<Char> {
    let len = mirror.len();
    if len < 8 || (len < DOC_CAP && rng.next() & 1 == 0) {
        let pos = rng.below(len as u64 + 1) as usize + 1;
        let c = char::from(b'a' + rng.below(26) as u8);
        mirror.insert(pos - 1, c);
        Op::ins(pos, c)
    } else {
        let pos = rng.below(len as u64) as usize + 1;
        let c = mirror.remove(pos - 1);
        Op::del(pos, c)
    }
}

/// Builds the journal: a store-backed admin engine executing
/// `log_records` edits, snapshotting on its own cadence, then dropped
/// cold. Returns the final replica digest.
fn build_journal(dir: &Path, log_records: u64) -> u64 {
    let cfg = StoreConfig {
        fsync: FsyncPolicy::EveryN(1024),
        snapshot_every: SNAPSHOT_EVERY,
        auto_snapshot: true,
        retain_snapshots: 2,
    };
    let store =
        Arc::new(EngineStore::<Char>::open(dir, 0, 0, cfg, ObsHandle::default()).expect("open"));
    let recovery = store.recover_doc(DOC, genesis).expect("fresh journal dir");
    assert!(recovery.fresh, "journal scratch dir was not empty");
    let engine = Engine::new_admin(0).with_store(store);
    engine.adopt_site(DOC, recovery.site).expect("adopt fresh site");
    let mut rng = Rng(0x5eed_5707);
    let mut mirror: Vec<char> = "store bench seed".chars().collect();
    for _ in 0..log_records {
        let op = bounded_edit(&mut rng, &mut mirror);
        engine.generate(DOC, op).expect("admin edit under a permissive policy");
    }
    engine.with(DOC, |site| site.state_digest()).expect("hosted document")
}

/// One cold-start recovery (store open + site rebuild), timed.
fn time_recovery(dir: &Path, cfg: StoreConfig) -> (f64, Recovery<Char>) {
    let start = Instant::now();
    let store =
        Arc::new(EngineStore::<Char>::open(dir, 0, 0, cfg, ObsHandle::default()).expect("open"));
    let recovery = store.recover_doc(DOC, genesis).expect("recover");
    (start.elapsed().as_secs_f64() * 1e3, recovery)
}

fn main() {
    let mut log_records = 100_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--log-records" => {
                log_records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--log-records takes a positive integer");
            }
            other => {
                eprintln!("unknown flag {other}; usage: store [--log-records N]");
                std::process::exit(2);
            }
        }
    }

    let scratch = std::env::temp_dir().join(format!("dce-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // -- append ns/op across the fsync spectrum -------------------------
    let policies: [(&str, FsyncPolicy, u32); 3] = [
        ("every_record", FsyncPolicy::EveryRecord, 600),
        ("every_n_64", FsyncPolicy::EveryN(64), 20_000),
        ("every_ms_5", FsyncPolicy::EveryMs(5), 20_000),
    ];
    let mut append_rows = Vec::new();
    for (i, &(name, policy, iters)) in policies.iter().enumerate() {
        let dir = scratch.join(format!("append-{i}"));
        let ns = bench_append(&dir, policy, iters);
        println!("append {name:>12}: {ns:>10.0} ns/op  ({iters} ops)");
        append_rows.push((name, iters, ns));
    }

    // -- cold-start recovery vs snapshot-transfer re-run ----------------
    let journal_dir = scratch.join("journal");
    let build_start = Instant::now();
    let built_digest = build_journal(&journal_dir, log_records);
    eprintln!("journal built in {:.1} ms", build_start.elapsed().as_secs_f64() * 1e3);

    let cfg = StoreConfig {
        fsync: FsyncPolicy::EveryN(1024),
        snapshot_every: SNAPSHOT_EVERY,
        auto_snapshot: true,
        retain_snapshots: 2,
    };
    let mut recovery_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let (ms, recovery) = time_recovery(&journal_dir, cfg);
        eprintln!("recovery pass: {ms:.1} ms");
        recovery_ms = recovery_ms.min(ms);
        last = Some(recovery);
    }
    let recovery = last.expect("three recovery passes ran");
    assert_eq!(recovery.records_total, log_records, "the journal holds every edit");
    assert_eq!(
        recovery.site.state_digest(),
        built_digest,
        "cold-start recovery must land on the pre-kill replica state"
    );
    let snapshot_used = recovery.snapshot_used.expect("the workload crossed snapshot boundaries");
    let replayed = recovery.replayed.len() as u64;
    assert_eq!(
        snapshot_used, log_records,
        "the workload length must be a multiple of the snapshot cadence \
         so the journal ends on a boundary"
    );

    // The alternative a store-less deployment pays: fetch the full
    // state from a surviving donor — encode + decode of the complete
    // replica, in-process (no network latency charged).
    let mut transfer_ms = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let rebuilt = dce_net::snapshot::transfer(&recovery.site, 0, 0).expect("snapshot transfer");
        transfer_ms = transfer_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rebuilt.state_digest(), built_digest, "transfer reproduces the state");
    }

    let speedup = transfer_ms / recovery_ms;
    let beats = recovery_ms < transfer_ms;
    println!(
        "recovery: {log_records} records, snapshot at {snapshot_used} + {replayed} replayed \
         -> {recovery_ms:.1} ms  (snapshot transfer: {transfer_ms:.1} ms, {speedup:.1}x)"
    );

    // Worst case, ungated: the crash landed one record before the next
    // snapshot, so the newest snapshot is gone and recovery replays a
    // full interval through the OT path. Bounded by the cadence, not
    // the log length — the number the cadence itself is tuned against.
    let newest_snap = journal_dir.join(format!("doc-{}/snap-{snapshot_used}.snap", DOC.0));
    std::fs::remove_file(&newest_snap).expect("drop the newest snapshot");
    let (mid_ms, mid) = time_recovery(&journal_dir, cfg);
    assert_eq!(
        mid.site.state_digest(),
        built_digest,
        "mid-interval recovery must land on the same replica state"
    );
    let mid_used = mid.snapshot_used.expect("the previous snapshot survives");
    let mid_replayed = mid.replayed.len() as u64;
    println!(
        "mid-interval recovery: snapshot at {mid_used} + {mid_replayed} replayed \
         -> {mid_ms:.1} ms"
    );

    let mut json = String::from("{\n  \"append\": [\n");
    for (i, (name, iters, ns)) in append_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"policy\": \"{name}\", \"ops\": {iters}, \"ns_per_op\": {ns:.0} }}{}\n",
            if i + 1 == append_rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"recovery\": {{\n    \"log_records\": {log_records},\n    \
         \"snapshot_every\": {SNAPSHOT_EVERY},\n    \"snapshot_used\": {snapshot_used},\n    \
         \"replayed\": {replayed},\n    \"torn_bytes\": {},\n    \
         \"recovery_ms\": {recovery_ms:.2},\n    \"snapshot_transfer_ms\": {transfer_ms:.2},\n    \
         \"speedup\": {speedup:.2},\n    \"recovery_beats_transfer\": {beats}\n  }},\n  \
         \"recovery_mid_interval\": {{\n    \"snapshot_used\": {mid_used},\n    \
         \"replayed\": {mid_replayed},\n    \"recovery_ms\": {mid_ms:.2}\n  }}\n}}\n",
        recovery.torn_bytes
    ));
    print!("{json}");

    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop();
    out.pop();
    out.push("results");
    std::fs::create_dir_all(&out).expect("create results dir");
    out.push("BENCH_store.json");
    std::fs::write(&out, &json).expect("write BENCH_store.json");
    eprintln!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&scratch);
    // The margin is structural only at scale: recovery skips the donor's
    // encode pass, whose cost grows with the log while recovery's fixed
    // costs (file reads, fsyncs, sealed-segment frame walk) do not. At
    // toy log sizes both sides sit within timer noise of each other, so
    // reduced CI runs exercise the path without gating on it.
    if log_records >= 50_000 {
        assert!(
            beats,
            "cold-start recovery ({recovery_ms:.1} ms) must beat a full snapshot \
             transfer re-run ({transfer_ms:.1} ms)"
        );
    } else {
        eprintln!("log below 50k records: recovery-vs-transfer gate not enforced");
    }
}

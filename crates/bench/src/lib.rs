//! # dce-bench — workload builders for the evaluation harness
//!
//! Shared machinery for regenerating the paper's evaluation (§6): building
//! sites whose cooperative log `H` has a prescribed size and insertion
//! percentage, plus timing helpers. The binaries (`fig7`, `figures`,
//! `complexity`, `latency`) and the Criterion benches all build on this.

pub mod workload;

use dce_core::{CoopRequest, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{Authorization, DocObject, Policy, Right, Sign, Subject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Users participating in benchmark groups.
pub const BENCH_USERS: [u32; 3] = [0, 1, 2];

/// Builds the permissive benchmark policy with `redundant` extra
/// (shadowed) authorizations — §6: "we suppose that the policy is not
/// optimized (i.e. it contains authorization redundancies)".
pub fn bench_policy(redundant: usize) -> Policy {
    let mut p = Policy::permissive(BENCH_USERS);
    for i in 0..redundant {
        let auth = Authorization::new(
            Subject::User(1),
            DocObject::Document,
            [Right::ALL[i % 4]],
            Sign::Plus,
        );
        // Appended after the catch-all grant: pure redundancy.
        p.add_auth_at(p.authorizations().len(), auth).expect("in range");
    }
    p
}

/// Builds a user site (user 1) whose log holds exactly `h` requests with
/// approximately `ins_pct` percent insertions, plus a second site whose
/// single pending request is concurrent to the whole log (the reception
/// workload). The initial document is sized so that a 0 % insertion mix
/// (deletions only) never runs dry.
pub fn build_loaded_site(
    h: usize,
    ins_pct: u32,
    redundant_auths: usize,
    seed: u64,
) -> (Site<Char>, CoopRequest<Char>) {
    let d0: String = ('a'..='z').cycle().take(h + 16).collect();
    let d0 = CharDocument::from_str(&d0);
    let policy = bench_policy(redundant_auths);

    let mut site: Site<Char> = Site::new_user(1, 0, d0.clone(), policy.clone());
    let mut remote: Site<Char> = Site::new_user(2, 0, d0, policy);
    // The remote request is generated first (empty context): when it is
    // delivered after the log is built, it is concurrent to everything —
    // the paper's stated worst case for `Receive_Coop_Request`.
    let pending = remote.generate(Op::ins(1, 'R')).expect("permissive policy");

    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..h {
        let len = site.document().len();
        let op = if rng.gen_range(0..100) < ins_pct || len == 0 {
            let pos = rng.gen_range(1..=len + 1);
            Op::ins(pos, char::from(b'a' + (i % 26) as u8))
        } else {
            let pos = rng.gen_range(1..=len);
            let elem = *site.document().get(pos).unwrap();
            Op::Del { pos, elem }
        };
        site.generate(op).expect("permissive policy");
    }
    debug_assert_eq!(site.engine().log().len(), h);
    (site, pending)
}

/// Times `f` on fresh clones of `site`, returning the median of `reps`
/// runs (cloning excluded from the measurement).
pub fn time_on_clones<T>(
    site: &Site<Char>,
    reps: usize,
    mut f: impl FnMut(&mut Site<Char>) -> T,
) -> Duration {
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let mut clone = site.clone();
            let start = Instant::now();
            std::hint::black_box(f(&mut clone));
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Measures `t1` — the paper's `Generate_Coop_Request` time — on a site
/// with the given loaded log: one insertion at a random position.
pub fn measure_t1(site: &Site<Char>, reps: usize) -> Duration {
    time_on_clones(site, reps, |s| {
        let len = s.document().len();
        s.generate(Op::ins(len / 2 + 1, 'T')).expect("granted")
    })
}

/// Measures `t2` — the paper's `Receive_Coop_Request` time — delivering
/// the pending fully-concurrent remote request.
pub fn measure_t2(site: &Site<Char>, pending: &CoopRequest<Char>, reps: usize) -> Duration {
    time_on_clones(site, reps, |s| {
        s.receive(dce_core::Message::Coop(pending.clone())).expect("protocol ok")
    })
}

/// The `p`-th percentile of `samples` (0–100, nearest-rank on a sorted
/// copy), `None` on an empty slice. Shared by the latency reporters —
/// `dce-loadgen` feeds it wall-clock request round trips.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_site_matches_requested_shape() {
        let (site, pending) = build_loaded_site(200, 100, 0, 1);
        assert_eq!(site.engine().log().len(), 200);
        assert_eq!(site.engine().log().ins_count(), 200);
        assert!(site.engine().log().is_canonical());
        // 0% insertions: all deletions.
        let (site, _) = build_loaded_site(150, 0, 0, 2);
        assert_eq!(site.engine().log().len(), 150);
        assert_eq!(site.engine().log().ins_count(), 0);
        // The pending request integrates cleanly.
        let (mut site, _) = build_loaded_site(50, 50, 0, 3);
        site.receive(dce_core::Message::Coop(pending)).unwrap();
        assert_eq!(site.engine().log().len(), 51);
    }

    #[test]
    fn redundant_policy_grows() {
        let p = bench_policy(25);
        assert_eq!(p.authorizations().len(), 26);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), Some(51.0));
        assert_eq!(percentile(&samples, 0.0), Some(1.0));
        assert_eq!(percentile(&samples, 100.0), Some(100.0));
        assert_eq!(percentile(&samples, 99.0), Some(99.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.5], 95.0), Some(7.5));
    }

    #[test]
    fn measurements_produce_nonzero_times() {
        let (site, pending) = build_loaded_site(300, 50, 10, 4);
        let t1 = measure_t1(&site, 3);
        let t2 = measure_t2(&site, &pending, 3);
        assert!(t1.as_nanos() > 0);
        assert!(t2.as_nanos() > 0);
    }
}

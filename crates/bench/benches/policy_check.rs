//! Microbenchmarks of the policy layer: first-match checking as the
//! authorization list grows, and Check_Remote as the administrative log
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dce_policy::{
    Action, AdminLog, AdminOp, AdminRequest, Authorization, DocObject, Policy, Right, Sign, Subject,
};

fn policy_with(n: usize) -> Policy {
    let mut p = Policy::permissive([1, 2, 3]);
    for i in 0..n {
        let auth = Authorization::new(
            Subject::User(2),
            DocObject::Range { from: i + 10, to: i + 20 },
            [Right::Update],
            Sign::Plus,
        );
        p.add_auth_at(0, auth).unwrap();
    }
    p
}

fn bench_check_local(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_local");
    // Worst case: the matching entry is the last one (the catch-all).
    let action = Action::new(Right::Insert, Some(2));
    for n in [1usize, 10, 100, 1000] {
        let p = policy_with(n);
        g.bench_with_input(BenchmarkId::from_parameter(n + 1), &n, |b, _| {
            b.iter(|| p.check(1, &action))
        });
    }
    g.finish();
}

fn bench_naive_vs_indexed(c: &mut Criterion) {
    // The refactor ablation: the same worst-case policies as
    // `check_local`, answered by the preserved linear scan
    // (`check_naive`) and by the positional index + decision memo
    // (`check`). The `hotpaths` bin reports the same pair as JSON.
    let mut g = c.benchmark_group("check_local_index_ablation");
    let action = Action::new(Right::Insert, Some(2));
    for n in [10usize, 100, 1000] {
        let p = policy_with(n);
        g.bench_with_input(BenchmarkId::new("naive", n + 1), &n, |b, _| {
            b.iter(|| p.check_naive(1, &action))
        });
        g.bench_with_input(BenchmarkId::new("indexed", n + 1), &n, |b, _| {
            b.iter(|| p.check(1, &action))
        });
    }
    g.finish();
}

fn bench_check_remote(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_remote");
    let policy = Policy::permissive([1, 2, 3]);
    let action = Action::new(Right::Insert, Some(2));
    for n in [10usize, 100, 1000] {
        let mut log = AdminLog::new();
        for v in 1..=n as u64 {
            log.push(AdminRequest { admin: 0, version: v, op: AdminOp::AddUser(100 + v as u32) });
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| log.check_remote(1, &action, 0, &policy))
        });
    }
    g.finish();
}

fn bench_normalization_ablation(c: &mut Criterion) {
    // §6 benches an unoptimized policy; this ablation quantifies what the
    // normalizer (dce_policy::normalize) buys back. Redundant entries are
    // placed *before* the deciding entry so the checker must scan them.
    let mut g = c.benchmark_group("check_local_ablation");
    for n in [100usize, 1000] {
        // Redundant entries sit *ahead* of the deciding tail entry, so the
        // checker must scan them; they are dead because an identical
        // blanket grant precedes them all.
        let mut p = Policy::permissive([1, 2, 3]);
        for _ in 0..n {
            let auth = Authorization::new(
                Subject::User(2),
                DocObject::Document,
                [Right::Update],
                Sign::Plus,
            );
            let at = p.authorizations().len();
            p.add_auth_at(at, auth).unwrap();
        }
        // The access that must reach the FIRST entry anyway sees no
        // redundancy cost; measure an access that scans: user 1 asking for
        // a right only the head entry grants — put the head at the END so
        // the scan passes every redundant entry first.
        let grant = p.authorizations()[0].clone();
        p.del_auth_at(0, &grant).unwrap();
        let at = p.authorizations().len();
        p.add_auth_at(at, grant).unwrap();
        let normalized = dce_policy::normalize(&p);
        assert!(normalized.authorizations().len() < p.authorizations().len());
        let action = Action::new(Right::Insert, Some(2));
        g.bench_with_input(BenchmarkId::new("redundant", n), &n, |b, _| {
            b.iter(|| p.check(1, &action))
        });
        g.bench_with_input(BenchmarkId::new("normalized", n), &n, |b, _| {
            b.iter(|| normalized.check(1, &action))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_check_local,
    bench_naive_vs_indexed,
    bench_check_remote,
    bench_normalization_ablation
);
criterion_main!(benches);

//! Microbenchmarks of the OT primitives: inclusion/exclusion
//! transformation, transposition, and the Canonize pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dce_document::{Char, CharDocument, Op};
use dce_ot::transform::{exclude, include, TOp};
use dce_ot::transpose::transpose;
use dce_ot::Engine;

fn bench_transform(c: &mut Criterion) {
    let a: TOp<Char> = TOp::new(Op::ins(10, 'x'), 1);
    let b: TOp<Char> = TOp::new(Op::del(5, 'q'), 2);
    c.bench_function("it_include", |bch| bch.iter(|| include(&a, &b)));
    c.bench_function("et_exclude", |bch| bch.iter(|| exclude(&a, &b).unwrap()));
    c.bench_function("transpose_pair", |bch| bch.iter(|| transpose(&b, &a).unwrap()));
}

fn bench_canonize(c: &mut Criterion) {
    // Canonize cost = bubbling one insertion past |Hdu| deletions.
    let mut g = c.benchmark_group("canonize_push");
    g.sample_size(20);
    for dels in [100usize, 1000, 4000] {
        let d0: String = ('a'..='z').cycle().take(dels + 8).collect();
        let mut engine = Engine::new(1, CharDocument::from_str(&d0));
        for _ in 0..dels {
            let elem = *engine.document().get(1).unwrap();
            engine.generate(Op::Del { pos: 1, elem }).unwrap();
        }
        g.bench_with_input(BenchmarkId::from_parameter(dels), &dels, |b, _| {
            b.iter_batched(
                || engine.clone(),
                |mut e| e.generate(Op::ins(1, 'z')).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use dce_core::{Message, Site};
    use dce_net::wire::{decode_message, encode_message};
    use dce_policy::Policy;

    let policy = Policy::permissive([0, 1]);
    let mut site: Site<Char> = Site::new_user(1, 0, CharDocument::from_str("abc"), policy);
    // A request with a non-trivial clock.
    for i in 0..8 {
        site.generate(Op::ins(i + 1, 'x')).unwrap();
    }
    let q = site.generate(Op::ins(1, 'z')).unwrap();
    let msg = Message::Coop(q);
    let bytes = encode_message(&msg);

    c.bench_function("wire_encode_coop", |b| b.iter(|| encode_message(&msg)));
    c.bench_function("wire_decode_coop", |b| {
        b.iter(|| decode_message::<Char>(bytes.clone()).unwrap())
    });
}

criterion_group!(benches, bench_transform, bench_canonize, bench_wire_codec);
criterion_main!(benches);

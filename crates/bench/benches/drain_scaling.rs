//! Reception-queue scaling: the causal-readiness scheduler against the
//! original Algorithm-1 scan loop.
//!
//! The workload is the scheduler's worst case for a scan: one producer
//! generates a causal chain of `n` edits, and the observer receives the
//! chain in *reverse* order. Every delivery but the last parks — the scan
//! loop re-tests the whole queue after each arrival (O(n²) readiness
//! checks per replay), while the scheduler parks each request on its one
//! missing predecessor and wakes exactly one per integration (O(n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dce_core::{Message, ScanSite, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::Policy;

/// A causal chain of `n` cooperative requests, reversed.
fn reversed_chain(n: usize) -> (Vec<Message<Char>>, Site<Char>) {
    let d0 = CharDocument::from_str("");
    let policy = Policy::permissive([0, 1, 2]);
    let mut producer: Site<Char> = Site::new_user(1, 0, d0.clone(), policy.clone());
    let mut msgs: Vec<Message<Char>> =
        (0..n).map(|i| Message::Coop(producer.generate(Op::ins(i + 1, 'x')).unwrap())).collect();
    msgs.reverse();
    let observer = Site::new_user(2, 0, d0, policy);
    (msgs, observer)
}

fn bench_drain_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("drain_reverse_chain");
    g.sample_size(10);
    for n in [100usize, 300, 1000] {
        let (msgs, observer) = reversed_chain(n);

        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let mut site = ScanSite::new(observer.clone());
                for m in &msgs {
                    site.receive(m.clone()).unwrap();
                }
                assert_eq!(site.queued(), 0);
                site.site().document().len()
            })
        });

        g.bench_with_input(BenchmarkId::new("scheduler", n), &n, |b, _| {
            b.iter(|| {
                let mut site = observer.clone();
                for m in &msgs {
                    site.receive(m.clone()).unwrap();
                }
                assert_eq!(site.queued(), 0);
                site.document().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_drain_scaling);
criterion_main!(benches);

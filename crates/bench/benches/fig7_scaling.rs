//! Criterion counterpart of the Fig. 7 harness: statistically rigorous
//! samples of t1/t2 at representative |H| sizes and insertion mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dce_bench::build_loaded_site;
use dce_core::Message;
use dce_document::Op;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_generate_t1");
    g.sample_size(20);
    for ins_pct in [0u32, 100] {
        for h in [1000usize, 4000] {
            let (site, _) = build_loaded_site(h, ins_pct, 10, 5);
            g.bench_with_input(BenchmarkId::new(format!("ins{ins_pct}"), h), &h, |b, _| {
                b.iter_batched(
                    || site.clone(),
                    |mut s| {
                        let len = s.document().len();
                        s.generate(Op::ins(len / 2 + 1, 'T')).unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_receive_t2");
    g.sample_size(20);
    for ins_pct in [0u32, 100] {
        for h in [1000usize, 4000] {
            let (site, pending) = build_loaded_site(h, ins_pct, 10, 6);
            g.bench_with_input(BenchmarkId::new(format!("ins{ins_pct}"), h), &h, |b, _| {
                b.iter_batched(
                    || (site.clone(), pending.clone()),
                    |(mut s, q)| s.receive(Message::Coop(q)).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generate, bench_receive);
criterion_main!(benches);

//! Throughput of the full protocol stack over the chaos transport:
//! delivered-operation rate for a 4-site session at increasing loss
//! levels, with the acknowledged session layer repairing the losses.
//! Quantifies what reliability costs on a clean network (0% loss) and
//! how retransmission overhead scales as the transport degrades.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dce_document::{Char, CharDocument, Op};
use dce_net::sim::{Latency, SimNet};
use dce_net::FaultPlan;
use dce_policy::Policy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_SITES: u32 = 4;
const OPS_PER_SITE: usize = 25;

/// Runs one seeded session to quiescence and returns delivered messages.
fn chaos_run(seed: u64, drop_prob: f64) -> u64 {
    let users: Vec<u32> = (0..N_SITES).collect();
    let mut sim: SimNet<Char> = SimNet::group(
        N_SITES,
        CharDocument::from_str("abcdef"),
        Policy::permissive(users),
        seed,
        Latency::Uniform(1, 40),
    );
    if drop_prob > 0.0 {
        sim.set_fault_plan(FaultPlan::none().with_drops(drop_prob));
    }
    sim.enable_reliability();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..OPS_PER_SITE {
        for site in 0..N_SITES as usize {
            let len = sim.site(site).document().len();
            let op = if len == 0 || rng.gen_bool(0.6) {
                Op::ins(rng.gen_range(1..=len + 1), 'x')
            } else {
                let p = rng.gen_range(1..=len);
                Op::Del { pos: p, elem: *sim.site(site).document().get(p).unwrap() }
            };
            sim.submit_coop(site, op).unwrap();
        }
        for _ in 0..20 {
            sim.step();
        }
    }
    sim.run_to_quiescence();
    assert!(sim.converged(), "bench session diverged");
    sim.stats().delivered
}

fn bench_chaos_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_throughput");
    for loss_pct in [0u32, 10, 30] {
        let drop_prob = loss_pct as f64 / 100.0;
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{loss_pct}pct_loss")),
            &drop_prob,
            |b, &p| {
                let mut seed = 1u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    chaos_run(seed, p)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_chaos_throughput);
criterion_main!(benches);

//! The audit trail must agree with the drain-style diagnostics across a
//! Fig. 2 revocation race: every record flagged `denied_here` is exactly
//! what `drain_denials` hands out, every record flagged `undone_here` is
//! exactly what `drain_undone` hands out, and draining empties the
//! corresponding audit bits without touching flags or effects.

use dce_core::{audit, Flag, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use std::collections::BTreeSet;

fn revoke_insert(user: u32) -> AdminOp {
    AdminOp::AddAuth {
        pos: 0,
        auth: Authorization::new(
            Subject::User(user),
            DocObject::Document,
            [Right::Insert],
            Sign::Minus,
        ),
    }
}

#[test]
fn audit_fates_agree_with_drained_diagnostics() {
    let p = Policy::permissive([0, 1, 2]);
    let d0 = CharDocument::from_str("abc");
    let mut adm: Site<Char> = Site::new_admin(0, d0.clone(), p.clone());
    let mut s1: Site<Char> = Site::new_user(1, 0, d0.clone(), p.clone());
    let mut s2: Site<Char> = Site::new_user(2, 0, d0, p);

    // A legal edit, validated before any revocation exists.
    let good = s1.generate(Op::ins(1, 'x')).unwrap();
    adm.receive(Message::Coop(good.clone())).unwrap();
    let validations = adm.drain_outbox();
    s2.receive(Message::Coop(good.clone())).unwrap();
    for m in validations {
        s1.receive(m.clone()).unwrap();
        s2.receive(m).unwrap();
    }

    // The race: user 1 inserts concurrently with the revocation of its
    // insert right. s2 and the administrator see the revocation first
    // (deny on arrival); s1 executed its own edit optimistically and must
    // undo it retroactively when the revocation lands.
    let revocation = adm.admin_generate(revoke_insert(1)).unwrap();
    let racy = s1.generate(Op::ins(2, 'y')).unwrap();
    s2.receive(Message::Admin(revocation.clone())).unwrap();
    s2.receive(Message::Coop(racy.clone())).unwrap();
    adm.receive(Message::Coop(racy.clone())).unwrap();
    s1.receive(Message::Admin(revocation)).unwrap();

    // ---- Capture the audit BEFORE draining: `denied_here` and
    // `undone_here` read the very vectors the drains consume. ----
    for (name, site) in [("adm", &adm), ("s2", &s2)] {
        let records = audit(site);
        let denied: BTreeSet<_> = records.iter().filter(|r| r.denied_here).map(|r| r.id).collect();
        let undone: BTreeSet<_> = records.iter().filter(|r| r.undone_here).map(|r| r.id).collect();
        assert_eq!(denied, BTreeSet::from([racy.ot.id]), "{name}: denied set");
        assert_eq!(undone, BTreeSet::new(), "{name}: nothing undone here");
        let rec = records.iter().find(|r| r.id == racy.ot.id).unwrap();
        assert_eq!(rec.flag, Flag::Invalid, "{name}");
        assert!(rec.inert, "{name}: denied request must have no effect");
    }
    {
        let records = audit(&s1);
        let undone: BTreeSet<_> = records.iter().filter(|r| r.undone_here).map(|r| r.id).collect();
        assert_eq!(undone, BTreeSet::from([racy.ot.id]), "s1: undone set");
        assert!(!records.iter().any(|r| r.denied_here), "s1 denied nothing on arrival");
        let rec = records.iter().find(|r| r.id == racy.ot.id).unwrap();
        assert_eq!(rec.flag, Flag::Invalid);
        assert!(rec.inert, "s1: the undone request must be effect-free");
    }
    // The validated edit stays clean everywhere.
    for site in [&adm, &s1, &s2] {
        let records = audit(site);
        let rec = records.iter().find(|r| r.id == good.ot.id).unwrap();
        assert_eq!(rec.flag, Flag::Valid);
        assert!(!rec.inert && !rec.denied_here && !rec.undone_here);
    }

    // ---- Draining hands out exactly the audited sets… ----
    assert_eq!(adm.drain_denials(), vec![racy.ot.id]);
    assert_eq!(s2.drain_denials(), vec![racy.ot.id]);
    assert_eq!(s1.drain_undone(), vec![racy.ot.id]);
    assert_eq!(s1.drain_denials(), Vec::new());
    assert_eq!(s2.drain_undone(), Vec::new());

    // …and afterwards the audit reports the bits as consumed, while the
    // durable fate (flag, inertness) is unchanged.
    for site in [&adm, &s1, &s2] {
        let records = audit(site);
        assert!(records.iter().all(|r| !r.denied_here && !r.undone_here));
        let rec = records.iter().find(|r| r.id == racy.ot.id).unwrap();
        assert_eq!(rec.flag, Flag::Invalid);
        assert!(rec.inert);
    }

    // Sanity: the race resolved identically everywhere.
    assert_eq!(adm.document(), s1.document());
    assert_eq!(adm.document(), s2.document());
}

//! Observability is *not* replicated state: whether a site records or
//! not, its digests are identical; checkpoints strip the recorder, so a
//! restored site comes back with observability disabled; and the policy
//! memo counters never leak into state comparison.

use dce_core::{Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_obs::ObsHandle;
use dce_policy::{Action, Policy, Right};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

fn digest(site: &Site<Char>) -> u64 {
    let mut h = DefaultHasher::new();
    site.digest_into(&mut h);
    h.finish()
}

fn pair() -> (Site<Char>, Site<Char>) {
    let d0 = CharDocument::from_str("abc");
    let p = Policy::permissive([0, 1]);
    (Site::new_admin(0, d0.clone(), p.clone()), Site::new_user(1, 0, d0, p))
}

/// One edit, validated by the administrator and settled at the issuer.
fn drive(adm: &mut Site<Char>, s1: &mut Site<Char>) {
    let q = s1.generate(Op::ins(1, 'x')).unwrap();
    adm.receive(Message::Coop(q)).unwrap();
    for m in adm.drain_outbox() {
        s1.receive(m).unwrap();
    }
}

#[test]
fn digest_is_identical_recording_on_or_off() {
    let (mut adm_a, mut s1_a) = pair();
    let (mut adm_b, mut s1_b) = pair();
    let obs = ObsHandle::recording(256);
    adm_b.set_observability(obs.clone());
    s1_b.set_observability(obs.clone());
    drive(&mut adm_a, &mut s1_a);
    drive(&mut adm_b, &mut s1_b);
    assert!(!obs.events().is_empty(), "the traced run did record");
    assert_eq!(digest(&adm_a), digest(&adm_b), "admin digest is blind to recording");
    assert_eq!(digest(&s1_a), digest(&s1_b), "user digest is blind to recording");
}

#[test]
fn checkpoint_strips_the_recorder() {
    let (mut adm, mut s1) = pair();
    let obs = ObsHandle::recording(256);
    s1.set_observability(obs.clone());
    drive(&mut adm, &mut s1);
    let events_before = obs.events().len();
    assert!(events_before > 0);
    let cp = s1.checkpoint();
    // A checkpoint is a fork point for state explorers; instrumentation
    // records the path taken, not the state reached, so restoring brings
    // the site back with observability disabled.
    s1.restore(&cp);
    assert!(!s1.observability().enabled());
    // Driving the restored site adds nothing to the old journal.
    s1.generate(Op::ins(1, 'y')).unwrap();
    assert_eq!(obs.events().len(), events_before);
}

#[test]
fn restored_checkpoint_matches_the_traced_original() {
    let (mut adm, mut s1) = pair();
    let obs = ObsHandle::recording(256);
    adm.set_observability(obs.clone());
    s1.set_observability(obs);
    drive(&mut adm, &mut s1);
    let cp = s1.checkpoint();
    let traced_digest = digest(&s1);
    let (_, mut other) = pair();
    other.restore(&cp);
    assert_eq!(digest(&other), traced_digest, "digest excludes the recorder");
    assert!(!other.observability().enabled());
}

#[test]
fn memo_stats_do_not_affect_digests() {
    let (adm_a, _) = pair();
    let (adm_b, _) = pair();
    // Warm adm_a's policy decision memo; adm_b's stays cold.
    for _ in 0..10 {
        let _ = adm_a.policy().check(1, &Action::new(Right::Insert, Some(1)));
    }
    assert_ne!(adm_a.policy().memo_stats(), adm_b.policy().memo_stats());
    assert_eq!(digest(&adm_a), digest(&adm_b), "memo traffic is not behavioral state");
}

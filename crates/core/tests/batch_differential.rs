//! Differential testing of the batched drain against the original
//! Algorithm-1 scan loop.
//!
//! The batched drain threads one `BatchPartition` cache through a whole
//! causally-ready run: when a missing link arrives and wakes a parked
//! chain of K remote requests, the canonical-log partition built for the
//! first is advanced across the remaining K-1 instead of being rebuilt
//! from scratch per request. This suite manufactures exactly those runs —
//! bursts of causally-chained edits from one site, delivered in reverse
//! so the entire chain parks and then wakes in a single drain — and
//! replays them, shuffled and partially duplicated, into a plain [`Site`]
//! and a [`ScanSite`] (the preserved pre-refactor scan loop, one
//! integration per pass, no cache). After every delivery both must agree
//! on the document and on how many messages are still queued; at the end,
//! on the replica digest and every piece of replicated state. Any
//! divergence — a cached partition advanced past a stale context, an
//! undo that should have discarded the cache but didn't — fails the
//! property.

use dce_core::{Message, ScanSite, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// One edit inside a burst, positions derived from a seed.
#[derive(Debug, Clone)]
enum Edit {
    Ins(usize, char),
    Del(usize),
    Up(usize, char),
}

/// One scripted action in the producer session.
#[derive(Debug, Clone)]
enum Step {
    /// A causally-chained run of edits from one site: generated
    /// back-to-back with no intervening deliveries, so each op's context
    /// includes its predecessor — the shape the batch cache feeds on.
    Burst(usize, Vec<Edit>),
    /// The administrator prepends a signed document-wide authorization
    /// (`false` = revocation: the retroactive-undo races that must
    /// discard the cache mid-run).
    Auth(u32, u8, bool),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        ((0usize..32), prop_oneof![Just('x'), Just('y'), Just('z')])
            .prop_map(|(i, c)| Edit::Ins(i, c)),
        (0usize..32).prop_map(Edit::Del),
        ((0usize..32), Just('W')).prop_map(|(i, c)| Edit::Up(i, c)),
    ]
}

fn arb_burst() -> impl Strategy<Value = Step> {
    ((0usize..3), proptest::collection::vec(arb_edit(), 1..8))
        .prop_map(|(who, edits)| Step::Burst(who, edits))
}

fn arb_step() -> impl Strategy<Value = Step> {
    // Bursts dominate 3:1 (the vendored proptest has no weighted
    // `prop_oneof!`); admin steps stay frequent enough to interleave
    // revocations with parked chains.
    prop_oneof![
        arb_burst(),
        arb_burst(),
        arb_burst(),
        ((1u32..3), (0u8..4), any::<bool>()).prop_map(|(u, r, p)| Step::Auth(u, r, p)),
    ]
}

/// Deterministic splitmix-style generator for the replay schedule.
fn next(state: &mut u64) -> usize {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 33) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batched_drain_matches_scan_drain(
        script in proptest::collection::vec(arb_step(), 1..12),
        replay_seed in any::<u64>(),
    ) {
        let d0 = CharDocument::from_str("base");
        let policy = Policy::permissive([0, 1, 2, 3]);

        // ---- Producer session: full mesh, prompt delivery between
        // steps, none *within* a burst. ----
        let mut sites: Vec<Site<Char>> = vec![
            Site::new_admin(0, d0.clone(), policy.clone()),
            Site::new_user(1, 0, d0.clone(), policy.clone()),
            Site::new_user(2, 0, d0.clone(), policy.clone()),
        ];
        let mut inboxes: Vec<VecDeque<Message<Char>>> = vec![VecDeque::new(); 3];
        // The pool the observers replay, grouped into blocks: one block
        // per burst (its chained coops, in generation order), one block
        // per administrative message or validation.
        let mut blocks: Vec<Vec<Message<Char>>> = Vec::new();

        macro_rules! bcast {
            ($from:expr, $msg:expr, $block:expr) => {{
                let msg: Message<Char> = $msg;
                for (i, inbox) in inboxes.iter_mut().enumerate() {
                    if i != $from {
                        inbox.push_back(msg.clone());
                    }
                }
                $block.push(msg);
            }};
        }
        macro_rules! settle {
            () => {
                loop {
                    let mut quiet = true;
                    for i in 0..sites.len() {
                        while let Some(m) = inboxes[i].pop_front() {
                            quiet = false;
                            sites[i].receive(m).unwrap();
                            for out in sites[i].drain_outbox() {
                                let mut block = Vec::new();
                                bcast!(i, out, block);
                                blocks.push(block);
                            }
                        }
                    }
                    if quiet {
                        break;
                    }
                }
            };
        }

        for step in script {
            settle!();
            match step {
                Step::Burst(who, edits) => {
                    let mut block = Vec::new();
                    for edit in edits {
                        let text = sites[who].document().to_string();
                        let len = text.chars().count();
                        let q = match edit {
                            Edit::Ins(seed, c) => {
                                sites[who].generate(Op::ins(1 + seed % (len + 1), c))
                            }
                            Edit::Del(seed) => {
                                if len == 0 {
                                    continue;
                                }
                                let pos = 1 + seed % len;
                                let cur = text.chars().nth(pos - 1).unwrap();
                                sites[who].generate(Op::del(pos, cur))
                            }
                            Edit::Up(seed, c) => {
                                if len == 0 {
                                    continue;
                                }
                                let pos = 1 + seed % len;
                                let cur = text.chars().nth(pos - 1).unwrap();
                                sites[who].generate(Op::up(pos, cur, c))
                            }
                        };
                        if let Ok(q) = q {
                            bcast!(who, Message::Coop(q), block);
                        }
                    }
                    if !block.is_empty() {
                        blocks.push(block);
                    }
                }
                Step::Auth(user, right_tag, plus) => {
                    let auth = Authorization::new(
                        Subject::User(user),
                        DocObject::Document,
                        [Right::ALL[right_tag as usize]],
                        if plus { Sign::Plus } else { Sign::Minus },
                    );
                    if let Ok(r) = sites[0].admin_generate(AdminOp::AddAuth { pos: 0, auth }) {
                        let mut block = Vec::new();
                        bcast!(0, Message::Admin(r), block);
                        blocks.push(block);
                    }
                }
            }
        }
        settle!();

        // ---- Replay schedule: reverse every burst (the whole chain
        // parks, then one arrival wakes it through the cache), shuffle
        // the block order, and append some duplicates. ----
        let mut lcg = replay_seed;
        for block in &mut blocks {
            if block.len() > 1 && !next(&mut lcg).is_multiple_of(4) {
                block.reverse();
            }
        }
        for i in (1..blocks.len()).rev() {
            let j = next(&mut lcg) % (i + 1);
            blocks.swap(i, j);
        }
        let mut deliveries: Vec<Message<Char>> = blocks.into_iter().flatten().collect();
        let dupes: Vec<Message<Char>> = deliveries
            .iter()
            .filter(|_| next(&mut lcg).is_multiple_of(4))
            .cloned()
            .collect();
        deliveries.extend(dupes);

        let mut fast: Site<Char> = Site::new_user(3, 0, d0.clone(), policy.clone());
        let mut scan: ScanSite<Char> = ScanSite::new(Site::new_user(3, 0, d0, policy));
        for (n, msg) in deliveries.into_iter().enumerate() {
            fast.receive(msg.clone()).unwrap();
            scan.receive(msg).unwrap();
            prop_assert_eq!(
                fast.queued(), scan.queued(),
                "queue sizes diverged after delivery {}", n
            );
            prop_assert_eq!(
                fast.document(), scan.site().document(),
                "documents diverged after delivery {}", n
            );
        }

        // End state: everything observable must be identical.
        prop_assert_eq!(fast.replica_digest(), scan.site().replica_digest());
        prop_assert_eq!(fast.version(), scan.site().version());
        prop_assert_eq!(fast.policy(), scan.site().policy());
        prop_assert_eq!(fast.admin_log(), scan.site().admin_log());
        let fa: HashMap<_, _> = fast.flags().collect();
        let fb: HashMap<_, _> = scan.site().flags().collect();
        prop_assert_eq!(fa, fb, "request flags diverged");
        prop_assert_eq!(fast.denials(), scan.site().denials());
        prop_assert_eq!(fast.undone(), scan.site().undone());
        prop_assert_eq!(
            fast.drain_outbox(),
            scan.site_mut().drain_outbox(),
            "emitted messages diverged"
        );
    }
}

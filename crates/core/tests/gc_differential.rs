//! Differential testing of log compaction: a site that aggressively
//! `auto_compact`s after every delivery must remain observably identical
//! to an uncompacted clone receiving the same shuffled message stream.
//!
//! Compaction only drops log entries that are settled *and* acknowledged
//! by every group member, so it must never change the document, the
//! policy, the administrative log, how queued messages wake, or what the
//! site generates next. Any observable difference fails the property.

use dce_core::{gc, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_ot::ids::Clock;
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// stability_horizon edge cases
// ---------------------------------------------------------------------

#[test]
fn horizon_of_no_clocks_is_empty() {
    let h = gc::stability_horizon(std::iter::empty::<&Clock>());
    assert_eq!(h.total(), 0);
    assert_eq!(h.get(7), 0);
}

#[test]
fn horizon_of_disjoint_site_sets_is_empty() {
    // Site sets {1} and {2} share no member: the pointwise minimum is
    // zero everywhere, so nothing is stable.
    let mut a = Clock::new();
    a.set(1, 5);
    let mut b = Clock::new();
    b.set(2, 9);
    let h = gc::stability_horizon([&a, &b]);
    assert_eq!(h.total(), 0);
    assert_eq!(h.get(1), 0);
    assert_eq!(h.get(2), 0);
}

#[test]
fn horizon_with_partial_overlap_keeps_only_the_common_part() {
    let mut a = Clock::new();
    a.set(1, 5);
    a.set(2, 1);
    let mut b = Clock::new();
    b.set(1, 2);
    b.set(3, 4);
    let h = gc::stability_horizon([&a, &b]);
    assert_eq!(h.get(1), 2);
    assert_eq!(h.get(2), 0);
    assert_eq!(h.get(3), 0);
}

#[test]
fn horizon_of_a_single_clock_is_that_clock() {
    let mut a = Clock::new();
    a.set(1, 3);
    a.set(4, 2);
    assert_eq!(gc::stability_horizon([&a]), a);
}

// ---------------------------------------------------------------------
// auto_compact differential property
// ---------------------------------------------------------------------

/// One scripted producer action.
#[derive(Debug, Clone)]
enum Action {
    /// User site inserts at a derived position.
    Ins(usize, char),
    /// User site deletes at a derived position (skipped when empty).
    Del(usize),
    /// User site rewrites a cell (grows its provenance chain — the
    /// structure chain collapse must preserve the value of).
    Up(usize, char),
    /// The administrator toggles user 1's right `r` (the Fig. 2/3 shape).
    Auth(u8, bool),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        ((0usize..16), prop_oneof![Just('x'), Just('y'), Just('z')])
            .prop_map(|(i, c)| Action::Ins(i, c)),
        (0usize..16).prop_map(Action::Del),
        ((0usize..16), prop_oneof![Just('U'), Just('V')]).prop_map(|(i, c)| Action::Up(i, c)),
        ((0u8..4), any::<bool>()).prop_map(|(r, p)| Action::Auth(r, p)),
    ]
}

/// Deterministic splitmix-style generator for the replay shuffle.
fn next(state: &mut u64) -> usize {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 33) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn auto_compacted_site_matches_uncompacted_clone(
        script in proptest::collection::vec((0usize..3, arb_action(), any::<bool>()), 1..20),
        replay_seed in any::<u64>(),
    ) {
        let d0 = CharDocument::from_str("base");
        let policy = Policy::permissive([0, 1, 2, 3]);

        // ---- Producer session: full mesh, prompt delivery. ----
        let mut sites: Vec<Site<Char>> = vec![
            Site::new_admin(0, d0.clone(), policy.clone()),
            Site::new_user(1, 0, d0.clone(), policy.clone()),
            Site::new_user(2, 0, d0.clone(), policy.clone()),
        ];
        let mut inboxes: Vec<VecDeque<Message<Char>>> = vec![VecDeque::new(); 3];
        let mut pool: Vec<Message<Char>> = Vec::new();

        macro_rules! bcast {
            ($from:expr, $msg:expr) => {{
                let msg: Message<Char> = $msg;
                for (i, inbox) in inboxes.iter_mut().enumerate() {
                    if i != $from {
                        inbox.push_back(msg.clone());
                    }
                }
                pool.push(msg);
            }};
        }
        macro_rules! settle {
            () => {
                loop {
                    let mut quiet = true;
                    for i in 0..sites.len() {
                        while let Some(m) = inboxes[i].pop_front() {
                            quiet = false;
                            sites[i].receive(m).unwrap();
                            for out in sites[i].drain_outbox() {
                                bcast!(i, out);
                            }
                        }
                    }
                    if quiet {
                        break;
                    }
                }
            };
        }

        for (who, action, do_settle) in script {
            // Settling is part of the generated script: unsettled actions
            // produce genuinely concurrent requests, the case where a
            // pruned log entry's form might still be needed to transform
            // an in-flight op (the compactor must hold back until it has
            // delivered everything any heartbeat announced).
            if do_settle {
                settle!();
            }
            match action {
                Action::Ins(seed, c) => {
                    let len = sites[who].document().len();
                    let pos = 1 + seed % (len + 1);
                    if let Ok(q) = sites[who].generate(Op::ins(pos, c)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Action::Del(seed) => {
                    let text = sites[who].document().to_string();
                    if text.is_empty() {
                        continue;
                    }
                    let pos = 1 + seed % text.chars().count();
                    let cur = text.chars().nth(pos - 1).unwrap();
                    if let Ok(q) = sites[who].generate(Op::del(pos, cur)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Action::Up(seed, c) => {
                    let text = sites[who].document().to_string();
                    if text.is_empty() {
                        continue;
                    }
                    let pos = 1 + seed % text.chars().count();
                    let cur = text.chars().nth(pos - 1).unwrap();
                    if let Ok(q) = sites[who].generate(Op::up(pos, cur, c)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Action::Auth(right_tag, plus) => {
                    let auth = Authorization::new(
                        Subject::User(1),
                        DocObject::Document,
                        [Right::ALL[right_tag as usize]],
                        if plus { Sign::Plus } else { Sign::Minus },
                    );
                    if let Ok(r) = sites[0].admin_generate(AdminOp::AddAuth { pos: 0, auth }) {
                        bcast!(0, Message::Admin(r));
                    }
                }
            }
            // Mid-session heartbeats ride the same shuffled pool, so the
            // observers see partial-clock announcements interleaved with
            // (and sometimes ahead of) the traffic they vouch for.
            for (i, site) in sites.iter().enumerate() {
                let hb = site.make_heartbeat();
                bcast!(i, hb);
            }
        }
        settle!();

        // Producers' final heartbeats: the acknowledgement state the
        // observers' auto_compact will derive its horizon from.
        let heartbeats: Vec<Message<Char>> =
            sites.iter().map(|s| s.make_heartbeat()).collect();

        // ---- Replay, shuffled, into both observers. ----
        let mut deliveries = pool;
        let mut lcg = replay_seed;
        for i in (1..deliveries.len()).rev() {
            let j = next(&mut lcg) % (i + 1);
            deliveries.swap(i, j);
        }

        let mut compacted: Site<Char> = Site::new_user(3, 0, d0.clone(), policy.clone());
        let mut plain: Site<Char> = Site::new_user(3, 0, d0, policy);
        let mut reclaimed = 0usize;
        for (n, msg) in deliveries.into_iter().enumerate() {
            compacted.receive(msg.clone()).unwrap();
            plain.receive(msg).unwrap();
            // Feed the group's heartbeats and compact after every delivery —
            // the most aggressive schedule auto_compact supports.
            for hb in &heartbeats {
                compacted.receive(hb.clone()).unwrap();
            }
            reclaimed += compacted.auto_compact();
            prop_assert_eq!(
                compacted.document(), plain.document(),
                "documents diverged after delivery {}", n
            );
            prop_assert_eq!(
                compacted.queued(), plain.queued(),
                "queue sizes diverged after delivery {}", n
            );
        }

        // End state: everything compaction promises to preserve. The
        // replica digest is behavioral over flags (settled fold) and the
        // admin log, so it must survive any pruning schedule.
        prop_assert_eq!(
            compacted.replica_digest(), plain.replica_digest(),
            "replica digests diverged: {:?} vs {:?}",
            compacted.replica_digest_parts(), plain.replica_digest_parts()
        );
        prop_assert_eq!(compacted.version(), plain.version());
        prop_assert_eq!(compacted.policy(), plain.policy());
        prop_assert_eq!(compacted.admin_log(), plain.admin_log());
        prop_assert_eq!(
            compacted.engine().log().len() + compacted.engine().pruned_count(),
            plain.engine().log().len() + plain.engine().pruned_count(),
            "compaction lost or invented log entries"
        );
        prop_assert_eq!(compacted.engine().pruned_count(), reclaimed);

        // The session continues identically after compaction: both
        // observers generate the same next request from the same state.
        let len = compacted.document().len();
        let qa = compacted.generate(Op::ins(1 + len, 'Q'));
        let qb = plain.generate(Op::ins(1 + len, 'Q'));
        match (qa, qb) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "post-compaction requests diverged"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "one observer denied the edit: {:?} vs {:?}", a, b),
        }
    }
}

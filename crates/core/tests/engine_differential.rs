//! Differential testing of the sharded [`Engine`] against independent
//! per-document [`Site`]s.
//!
//! For each of `M` documents, a small producer session (one
//! administrator, one user) generates a pool of protocol messages —
//! cooperative edits, administrative policy changes, and the validations
//! the administrator emits. All pools are then tagged with their
//! [`DocumentId`], merged, shuffled *across documents*, partially
//! duplicated, and replayed into two observers of the same initial
//! state:
//!
//! * one [`Engine`] hosting all `M` documents (routing every delivery
//!   by its document id), and
//! * `M` plain [`Site`]s, one per document, each receiving only its own
//!   document's subsequence.
//!
//! After every delivery the engine's shard must agree with the
//! free-standing site on queue depth; at the end, on the document, the
//! replica digest, the policy version, and the request flags — for
//! every document. Any divergence (a delivery routed to the wrong
//! shard, shard state bleeding across documents, a policy snapshot
//! refreshed at the wrong time) fails the property.

use dce_core::{DocumentId, Engine, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted action in a document's producer session.
#[derive(Debug, Clone)]
enum Step {
    /// User inserts at a position derived from the seed.
    Ins(usize, char),
    /// User deletes at a derived position (skipped on empty documents).
    Del(usize),
    /// The administrator prepends a signed document-wide authorization
    /// for the user on one right.
    Auth(u8, bool),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        ((0usize..24), prop_oneof![Just('x'), Just('y'), Just('z')])
            .prop_map(|(i, c)| Step::Ins(i, c)),
        (0usize..24).prop_map(Step::Del),
        ((0u8..4), any::<bool>()).prop_map(|(r, p)| Step::Auth(r, p)),
    ]
}

/// Deterministic splitmix-style generator for the replay schedule.
fn next(state: &mut u64) -> usize {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 33) as usize
}

/// Runs one document's producer session (admin 0, user 1, prompt
/// delivery) and returns every message that crossed the wire —
/// including the admin's validations — in generation order.
fn produce(d0: &CharDocument, policy: &Policy, script: &[Step]) -> Vec<Message<Char>> {
    let mut adm: Site<Char> = Site::new_admin(0, d0.clone(), policy.clone());
    let mut user: Site<Char> = Site::new_user(1, 0, d0.clone(), policy.clone());
    let mut pool: Vec<Message<Char>> = Vec::new();

    for step in script {
        match step {
            Step::Ins(seed, c) => {
                let len = user.document().len();
                let pos = 1 + seed % (len + 1);
                if let Ok(q) = user.generate(Op::ins(pos, *c)) {
                    let msg = Message::Coop(q);
                    adm.receive(msg.clone()).unwrap();
                    pool.push(msg);
                }
            }
            Step::Del(seed) => {
                let len = user.document().len();
                if len == 0 {
                    continue;
                }
                let pos = 1 + seed % len;
                let cur = *user.document().get(pos).unwrap();
                if let Ok(q) = user.generate(Op::del(pos, cur)) {
                    let msg = Message::Coop(q);
                    adm.receive(msg.clone()).unwrap();
                    pool.push(msg);
                }
            }
            Step::Auth(right_tag, plus) => {
                let auth = Authorization::new(
                    Subject::User(1),
                    DocObject::Document,
                    [Right::ALL[*right_tag as usize]],
                    if *plus { Sign::Plus } else { Sign::Minus },
                );
                if let Ok(r) = adm.admin_generate(AdminOp::AddAuth { pos: 0, auth }) {
                    pool.push(Message::Admin(r));
                }
            }
        }
        // Validations (and the admin's own requests) flow back to the
        // user promptly, and into the pool for the observers.
        for out in adm.drain_outbox() {
            user.receive(out.clone()).unwrap();
            pool.push(out);
        }
    }
    pool
}

const DOCS: u64 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sharded_engine_matches_single_site(
        scripts in proptest::collection::vec(
            proptest::collection::vec(arb_step(), 1..12),
            DOCS as usize..DOCS as usize + 1,
        ),
        replay_seed in any::<u64>(),
    ) {
        let d0 = CharDocument::from_str("seed");
        let policy = Policy::permissive([0, 1, 3]);

        // ---- Produce: one independent session per document. ----
        let mut deliveries: Vec<(DocumentId, Message<Char>)> = Vec::new();
        for (i, script) in scripts.iter().enumerate() {
            let doc = DocumentId::new(i as u64);
            for msg in produce(&d0, &policy, script) {
                deliveries.push((doc, msg));
            }
        }

        // ---- Shuffle across documents, duplicate a quarter. ----
        let mut lcg = replay_seed;
        let dups: Vec<(DocumentId, Message<Char>)> = deliveries
            .iter()
            .filter(|_| next(&mut lcg).is_multiple_of(4))
            .cloned()
            .collect();
        deliveries.extend(dups);
        for i in (1..deliveries.len()).rev() {
            let j = next(&mut lcg) % (i + 1);
            deliveries.swap(i, j);
        }

        // ---- Two observers of the same initial state. ----
        let engine: Engine<Char> = Engine::new_user(3, 0);
        engine
            .create_documents(
                (0..DOCS).map(|i| (DocumentId::new(i), d0.clone(), policy.clone())),
            )
            .unwrap();
        let mut singles: Vec<Site<Char>> = (0..DOCS)
            .map(|_| Site::new_user(3, 0, d0.clone(), policy.clone()))
            .collect();

        for (n, (doc, msg)) in deliveries.into_iter().enumerate() {
            engine.receive(doc, msg.clone()).unwrap();
            let single = &mut singles[doc.as_u64() as usize];
            single.receive(msg).unwrap();
            prop_assert_eq!(
                engine.with(doc, |s| s.queued()).unwrap(),
                single.queued(),
                "queue depth diverged on {} after delivery {}", doc, n
            );
        }

        // ---- End state: every document's shard matches its site. ----
        for i in 0..DOCS {
            let doc = DocumentId::new(i);
            let single = &mut singles[i as usize];
            prop_assert_eq!(
                engine.replica_digest(doc).unwrap(),
                single.replica_digest(),
                "replica digest diverged on {}", doc
            );
            prop_assert_eq!(
                engine.document(doc).unwrap(),
                single.document().clone(),
                "document diverged on {}", doc
            );
            prop_assert_eq!(
                engine.with(doc, |s| s.version()).unwrap(),
                single.version(),
                "policy version diverged on {}", doc
            );
            let ef: HashMap<_, _> = engine.with(doc, |s| s.flags().collect()).unwrap();
            let sf: HashMap<_, _> = single.flags().collect();
            prop_assert_eq!(ef, sf, "request flags diverged on {}", doc);
            prop_assert_eq!(
                engine.drain_outbox(doc),
                single.drain_outbox(),
                "emitted messages diverged on {}", doc
            );
        }
    }
}

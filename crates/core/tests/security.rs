//! Randomized end-to-end tests of the access-control layer.
//!
//! Scenarios mix cooperative edits with concurrent administrative
//! grant/revoke churn, deliver everything in random orders, and assert the
//! paper's two target properties after quiescence:
//!
//! 1. **Convergence** — every site ends with the same document and the
//!    same per-request flags;
//! 2. **Security** — the surviving effects are exactly the requests that
//!    ended `Valid`: no request flagged `Invalid` anywhere has a live
//!    effect anywhere, and no `Valid` request was lost.

use dce_core::{CoopRequest, Flag, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const ADMIN: u32 = 0;

fn make_sites(n_users: u32, initial: &str) -> Vec<Site<Char>> {
    let users: Vec<u32> = (0..=n_users).collect();
    let policy = Policy::permissive(users.clone());
    let d0 = CharDocument::from_str(initial);
    users
        .iter()
        .map(|&u| {
            if u == ADMIN {
                Site::new_admin(u, d0.clone(), policy.clone())
            } else {
                Site::new_user(u, ADMIN, d0.clone(), policy.clone())
            }
        })
        .collect()
}

fn random_coop(
    site: &mut Site<Char>,
    rng: &mut StdRng,
    next_char: &mut u32,
) -> Option<CoopRequest<Char>> {
    let len = site.document().len();
    let choice = rng.gen_range(0..100);
    let op = if len == 0 || choice < 50 {
        let pos = rng.gen_range(1..=len + 1);
        let c = char::from_u32('a' as u32 + (*next_char % 26)).unwrap();
        *next_char += 1;
        Op::ins(pos, c)
    } else if choice < 80 {
        let pos = rng.gen_range(1..=len);
        let elem = *site.document().get(pos).unwrap();
        Op::Del { pos, elem }
    } else {
        let pos = rng.gen_range(1..=len);
        let old = *site.document().get(pos).unwrap();
        let c = char::from_u32('A' as u32 + (*next_char % 26)).unwrap();
        *next_char += 1;
        Op::up(pos, old, c)
    };
    site.generate(op).ok()
}

fn random_admin(rng: &mut StdRng, n_users: u32) -> AdminOp {
    let user = rng.gen_range(1..=n_users);
    let right = [Right::Insert, Right::Delete, Right::Update][rng.gen_range(0..3)];
    let sign = if rng.gen_bool(0.5) { Sign::Minus } else { Sign::Plus };
    AdminOp::AddAuth {
        pos: 0,
        auth: Authorization::new(Subject::User(user), DocObject::Document, [right], sign),
    }
}

/// Runs one randomized session and checks the invariants.
fn run_session(seed: u64, n_users: u32, rounds: usize, initial: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites = make_sites(n_users, initial);
    let mut next_char = 0;

    // Per-destination pending message queues (random delivery order).
    let n = sites.len();
    let mut pending: Vec<Vec<Message<Char>>> = vec![Vec::new(); n];

    let broadcast = |msg: Message<Char>, from: usize, pending: &mut Vec<Vec<Message<Char>>>| {
        for (i, q) in pending.iter_mut().enumerate() {
            if i != from {
                q.push(msg.clone());
            }
        }
    };

    #[allow(clippy::needless_range_loop)] // indices shared between queues and sites
    for _ in 0..rounds {
        // Each site (possibly) generates a cooperative op; the admin
        // (possibly) issues an administrative op.
        for i in 0..n {
            if rng.gen_bool(0.7) {
                if let Some(q) = random_coop(&mut sites[i], &mut rng, &mut next_char) {
                    broadcast(Message::Coop(q), i, &mut pending);
                }
            }
        }
        if rng.gen_bool(0.6) {
            let op = random_admin(&mut rng, n_users);
            if let Ok(r) = sites[0].admin_generate(op) {
                broadcast(Message::Admin(r), 0, &mut pending);
            }
        }

        // Randomly deliver a few messages per site.
        for i in 0..n {
            pending[i].shuffle(&mut rng);
            let k = rng.gen_range(0..=pending[i].len());
            let rest = pending[i].split_off(k);
            for msg in std::mem::replace(&mut pending[i], rest) {
                sites[i].receive(msg).unwrap();
                for out in sites[i].drain_outbox() {
                    broadcast(out, i, &mut pending);
                }
            }
        }
    }

    // Quiescence: flush every queue until empty (retrying non-ready ones).
    let mut remaining = 4 * n * rounds + 16;
    loop {
        let mut moved = false;
        for i in 0..n {
            pending[i].shuffle(&mut rng);
            for msg in std::mem::take(&mut pending[i]) {
                sites[i].receive(msg).unwrap();
                moved = true;
                for out in sites[i].drain_outbox() {
                    broadcast(out, i, &mut pending);
                }
            }
        }
        if !moved && pending.iter().all(|q| q.is_empty()) {
            break;
        }
        remaining -= 1;
        assert!(remaining > 0, "session did not quiesce (seed {seed})");
    }
    for site in &sites {
        assert_eq!(site.queued(), 0, "stuck queue at s{} (seed {seed})", site.user());
    }

    // 1. Convergence.
    let reference = sites[0].document().to_string();
    for site in &sites {
        assert_eq!(
            site.document().to_string(),
            reference,
            "document divergence at s{} (seed {seed})",
            site.user()
        );
        assert_eq!(site.version(), sites[0].version(), "policy version divergence");
        assert_eq!(site.policy(), sites[0].policy(), "policy divergence");
    }

    // 2. Flag agreement and security: a request inert at one site must be
    // inert at all sites, and its flag must be Invalid; live requests must
    // not be Invalid anywhere.
    for entry in sites[0].engine().log().iter() {
        let id = entry.id;
        let inert0 = entry.inert;
        for site in &sites[1..] {
            let e = site.engine().log().get(id).unwrap_or_else(|| {
                panic!("request {id} missing at s{} (seed {seed})", site.user())
            });
            assert_eq!(
                e.inert,
                inert0,
                "inertness divergence for {id} at s{} (seed {seed})",
                site.user()
            );
        }
        let flags: Vec<Option<Flag>> = sites.iter().map(|s| s.flag_of(id)).collect();
        if inert0 {
            for (s, f) in sites.iter().zip(&flags) {
                assert_eq!(
                    *f,
                    Some(Flag::Invalid),
                    "inert request {id} not flagged invalid at s{} (seed {seed})",
                    s.user()
                );
            }
        } else {
            // A live (effective) request must never be flagged invalid, and
            // after quiescence the administrator has validated everything.
            for (s, f) in sites.iter().zip(&flags) {
                assert_ne!(
                    *f,
                    Some(Flag::Invalid),
                    "live request {id} flagged invalid at s{} (seed {seed})",
                    s.user()
                );
            }
            assert_eq!(
                sites[0].flag_of(id),
                Some(Flag::Valid),
                "live request {id} not validated by the admin (seed {seed})"
            );
        }
    }
}

#[test]
fn sessions_with_light_churn() {
    for seed in 0..60 {
        run_session(seed, 2, 4, "abcdef");
    }
}

#[test]
fn sessions_with_more_users() {
    for seed in 100..140 {
        run_session(seed, 4, 4, "collaborative");
    }
}

#[test]
fn sessions_from_empty_document() {
    for seed in 200..240 {
        run_session(seed, 3, 5, "");
    }
}

#[test]
fn single_user_with_admin_churn() {
    for seed in 300..340 {
        run_session(seed, 1, 6, "xy");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proptest_sessions(seed in any::<u64>(), users in 1u32..5, rounds in 1usize..6) {
        run_session(seed, users, rounds, "abc");
    }
}

/// Pinned shrunken case from `security.proptest-regressions`. The vendored
/// proptest stand-in does not replay regression files, so the historical
/// failure (seed 14441277372243559053, users = 4, rounds = 4) is kept
/// alive here as a plain test.
#[test]
fn proptest_regression_pinned_seed() {
    run_session(14441277372243559053, 4, 4, "abc");
}

/// Broad divergence sweep over many seeds at the regression's shape; slow,
/// so ignored by default. Run with
/// `cargo test -p dce-core --test security -- --ignored`.
#[test]
#[ignore = "slow divergence sweep"]
fn seed_sweep_regression_shape() {
    for seed in 0..2000u64 {
        run_session(seed, 4, 4, "abc");
    }
}

/// Regression: an admin validation plus a later restrictive request must
/// arrive as a unit — the restrictive one cannot jump the queue (Fig. 4).
#[test]
fn fig4_restrictive_request_waits_for_validation() {
    let mut sites = make_sites(2, "abc");
    let q = sites[1].generate(Op::ins(1, 'x')).unwrap();
    sites[0].receive(Message::Coop(q.clone())).unwrap();
    let validation = sites[0].drain_outbox();
    let revoke = sites[0]
        .admin_generate(AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(1),
                DocObject::Document,
                [Right::Insert],
                Sign::Minus,
            ),
        })
        .unwrap();

    // s2 receives the revocation first: it must wait (version 2 > 0 + 1
    // requires the validation, and the validation requires the insert).
    let s2 = &mut sites[2];
    s2.receive(Message::Admin(revoke)).unwrap();
    assert_eq!(s2.version(), 0);
    for m in validation {
        s2.receive(m).unwrap();
    }
    assert_eq!(s2.version(), 0, "validation must wait for its target");
    s2.receive(Message::Coop(q.clone())).unwrap();
    // Everything unblocks in order: insert applied, validated, then the
    // revocation — which must NOT undo the now-valid insert.
    assert_eq!(s2.version(), 2);
    assert_eq!(s2.document().to_string(), "xabc");
    assert_eq!(s2.flag_of(q.ot.id), Some(Flag::Valid));
}

/// Regression for the paper's Fig. 3: the administrative log is what makes
/// re-granting safe — a request rejected under a concurrent revocation
/// stays rejected even if the right is granted again afterwards.
#[test]
fn fig3_regrant_does_not_resurrect_rejected_request() {
    let mut sites = make_sites(2, "abc");

    // adm revokes s2's deletion right; s2 concurrently deletes.
    let revoke = sites[0]
        .admin_generate(AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(2),
                DocObject::Document,
                [Right::Delete],
                Sign::Minus,
            ),
        })
        .unwrap();
    let q = sites[2].generate(Op::del(1, 'a')).unwrap();

    // adm then re-grants deletion to s2.
    let regrant = sites[0]
        .admin_generate(AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(2),
                DocObject::Document,
                [Right::Delete],
                Sign::Plus,
            ),
        })
        .unwrap();

    // s1 applies both administrative requests, then receives the deletion.
    // Without the administrative log it would check the deletion against
    // the *current* (permissive again) policy and wrongly accept it.
    let s1 = &mut sites[1];
    s1.receive(Message::Admin(revoke.clone())).unwrap();
    s1.receive(Message::Admin(regrant.clone())).unwrap();
    s1.receive(Message::Coop(q.clone())).unwrap();
    assert_eq!(s1.document().to_string(), "abc");
    assert_eq!(s1.flag_of(q.ot.id), Some(Flag::Invalid));

    // The admin rejects it identically.
    sites[0].receive(Message::Coop(q.clone())).unwrap();
    assert_eq!(sites[0].document().to_string(), "abc");
    assert_eq!(sites[0].flag_of(q.ot.id), Some(Flag::Invalid));

    // s2 undoes its own deletion when the revocation arrives.
    let s2 = &mut sites[2];
    s2.receive(Message::Admin(revoke)).unwrap();
    assert_eq!(s2.document().to_string(), "abc");
    s2.receive(Message::Admin(regrant)).unwrap();
    assert_eq!(s2.document().to_string(), "abc");
}

//! Differential testing of the causal-readiness scheduler against the
//! original Algorithm-1 scan loop.
//!
//! A small producer session (one administrator, two users) generates a
//! pool of protocol messages — cooperative edits, administrative policy
//! changes, and the validations the administrator emits in response.
//! The pool is then replayed, shuffled and partially duplicated, into two
//! fresh observers of the same initial state: a plain [`Site`] (the
//! scheduler) and a [`ScanSite`] (the preserved pre-refactor scan loop).
//! After every single delivery, both must agree on the document, and on
//! how many messages are still queued; at the end, on every piece of
//! replicated state and every diagnostic. Any divergence — a request the
//! scheduler wakes too early, too late, or never — fails the property.

use dce_core::{Message, ScanSite, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// One scripted action in the producer session.
#[derive(Debug, Clone)]
enum Step {
    /// `Ins(seed, ch)`: user site inserts `ch` at a position derived from
    /// `seed` and the current document length.
    Ins(usize, char),
    /// Delete at a derived position (skipped on an empty document).
    Del(usize),
    /// Update at a derived position.
    Up(usize, char),
    /// The administrator prepends a signed document-wide authorization
    /// for `user` on one right (`Sign::Minus` makes it a revocation —
    /// the Fig. 2/3 races).
    Auth(u32, u8, bool),
    /// The administrator registers a fresh user.
    AddUser(u32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        ((0usize..32), prop_oneof![Just('x'), Just('y'), Just('z')])
            .prop_map(|(i, c)| Step::Ins(i, c)),
        (0usize..32).prop_map(Step::Del),
        ((0usize..32), Just('W')).prop_map(|(i, c)| Step::Up(i, c)),
        ((1u32..3), (0u8..4), any::<bool>()).prop_map(|(u, r, p)| Step::Auth(u, r, p)),
        (5u32..9).prop_map(Step::AddUser),
    ]
}

/// Deterministic splitmix-style generator for the replay schedule (kept
/// local so the test needs no RNG dependency).
fn next(state: &mut u64) -> usize {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 33) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scheduler_matches_scan_drain(
        script in proptest::collection::vec((0usize..3, arb_step()), 1..24),
        replay_seed in any::<u64>(),
    ) {
        let d0 = CharDocument::from_str("base");
        let policy = Policy::permissive([0, 1, 2, 3]);

        // ---- Producer session: full mesh, prompt delivery. ----
        let mut sites: Vec<Site<Char>> = vec![
            Site::new_admin(0, d0.clone(), policy.clone()),
            Site::new_user(1, 0, d0.clone(), policy.clone()),
            Site::new_user(2, 0, d0.clone(), policy.clone()),
        ];
        let mut inboxes: Vec<VecDeque<Message<Char>>> = vec![VecDeque::new(); 3];
        let mut pool: Vec<Message<Char>> = Vec::new();

        // Broadcasts go to the other producers *and* into the pool the
        // observers later replay.
        macro_rules! bcast {
            ($from:expr, $msg:expr) => {{
                let msg: Message<Char> = $msg;
                for (i, inbox) in inboxes.iter_mut().enumerate() {
                    if i != $from {
                        inbox.push_back(msg.clone());
                    }
                }
                pool.push(msg);
            }};
        }
        macro_rules! settle {
            () => {
                loop {
                    let mut quiet = true;
                    for i in 0..sites.len() {
                        while let Some(m) = inboxes[i].pop_front() {
                            quiet = false;
                            sites[i].receive(m).unwrap();
                            for out in sites[i].drain_outbox() {
                                bcast!(i, out);
                            }
                        }
                    }
                    if quiet {
                        break;
                    }
                }
            };
        }

        for (who, step) in script {
            settle!();
            match step {
                Step::Ins(seed, c) => {
                    let len = sites[who].document().len();
                    let pos = 1 + seed % (len + 1);
                    if let Ok(q) = sites[who].generate(Op::ins(pos, c)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Step::Del(seed) => {
                    let text = sites[who].document().to_string();
                    if text.is_empty() {
                        continue;
                    }
                    let pos = 1 + seed % text.chars().count();
                    let cur = text.chars().nth(pos - 1).unwrap();
                    if let Ok(q) = sites[who].generate(Op::del(pos, cur)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Step::Up(seed, c) => {
                    let text = sites[who].document().to_string();
                    if text.is_empty() {
                        continue;
                    }
                    let pos = 1 + seed % text.chars().count();
                    let cur = text.chars().nth(pos - 1).unwrap();
                    if let Ok(q) = sites[who].generate(Op::up(pos, cur, c)) {
                        bcast!(who, Message::Coop(q));
                    }
                }
                Step::Auth(user, right_tag, plus) => {
                    let auth = Authorization::new(
                        Subject::User(user),
                        DocObject::Document,
                        [Right::ALL[right_tag as usize]],
                        if plus { Sign::Plus } else { Sign::Minus },
                    );
                    if let Ok(r) = sites[0].admin_generate(AdminOp::AddAuth { pos: 0, auth }) {
                        bcast!(0, Message::Admin(r));
                    }
                }
                Step::AddUser(u) => {
                    if let Ok(r) = sites[0].admin_generate(AdminOp::AddUser(u)) {
                        bcast!(0, Message::Admin(r));
                    }
                }
            }
            // Validations the admin emitted for its *own* local requests
            // are drained by settle!() at the top of the next step.
        }
        settle!();

        // ---- Replay: shuffle + duplicate, deliver to both observers. ----
        let mut deliveries = pool.clone();
        let mut lcg = replay_seed;
        for msg in &pool {
            if next(&mut lcg).is_multiple_of(4) {
                deliveries.push(msg.clone());
            }
        }
        for i in (1..deliveries.len()).rev() {
            let j = next(&mut lcg) % (i + 1);
            deliveries.swap(i, j);
        }

        let mut fast: Site<Char> = Site::new_user(3, 0, d0.clone(), policy.clone());
        let mut scan: ScanSite<Char> = ScanSite::new(Site::new_user(3, 0, d0, policy));
        for (n, msg) in deliveries.into_iter().enumerate() {
            fast.receive(msg.clone()).unwrap();
            scan.receive(msg).unwrap();
            prop_assert_eq!(
                fast.queued(), scan.queued(),
                "queue sizes diverged after delivery {}", n
            );
            prop_assert_eq!(
                fast.document(), scan.site().document(),
                "documents diverged after delivery {}", n
            );
        }

        // End state: everything observable must be identical.
        prop_assert_eq!(fast.version(), scan.site().version());
        prop_assert_eq!(fast.policy(), scan.site().policy());
        prop_assert_eq!(fast.admin_log(), scan.site().admin_log());
        let fa: HashMap<_, _> = fast.flags().collect();
        let fb: HashMap<_, _> = scan.site().flags().collect();
        prop_assert_eq!(fa, fb, "request flags diverged");
        prop_assert_eq!(fast.denials(), scan.site().denials());
        prop_assert_eq!(fast.undone(), scan.site().undone());
        prop_assert_eq!(
            fast.drain_outbox(),
            scan.site_mut().drain_outbox(),
            "emitted messages diverged"
        );
    }
}

//! Scratch divergence hunter: replays a seeded randomized session with
//! verbose tracing. Usage: `cargo run -p dce-core --example hunt -- <seed>`.

use dce_core::{CoopRequest, Message, Site};
use dce_document::{Char, CharDocument, Op};
use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const ADMIN: u32 = 0;

fn make_sites(n_users: u32, initial: &str) -> Vec<Site<Char>> {
    let users: Vec<u32> = (0..=n_users).collect();
    let policy = Policy::permissive(users.clone());
    let d0 = CharDocument::from_str(initial);
    users
        .iter()
        .map(|&u| {
            if u == ADMIN {
                Site::new_admin(u, d0.clone(), policy.clone())
            } else {
                Site::new_user(u, ADMIN, d0.clone(), policy.clone())
            }
        })
        .collect()
}

fn random_coop(
    site: &mut Site<Char>,
    rng: &mut StdRng,
    next_char: &mut u32,
) -> Option<CoopRequest<Char>> {
    let len = site.document().len();
    let choice = rng.gen_range(0..100);
    let op = if len == 0 || choice < 50 {
        let pos = rng.gen_range(1..=len + 1);
        let c = char::from_u32('a' as u32 + (*next_char % 26)).unwrap();
        *next_char += 1;
        Op::ins(pos, c)
    } else if choice < 80 {
        let pos = rng.gen_range(1..=len);
        let elem = *site.document().get(pos).unwrap();
        Op::Del { pos, elem }
    } else {
        let pos = rng.gen_range(1..=len);
        let old = *site.document().get(pos).unwrap();
        let c = char::from_u32('A' as u32 + (*next_char % 26)).unwrap();
        *next_char += 1;
        Op::up(pos, old, c)
    };
    site.generate(op).ok()
}

fn random_admin(rng: &mut StdRng, n_users: u32) -> AdminOp {
    let user = rng.gen_range(1..=n_users);
    let right = [Right::Insert, Right::Delete, Right::Update][rng.gen_range(0..3)];
    let sign = if rng.gen_bool(0.5) { Sign::Minus } else { Sign::Plus };
    AdminOp::AddAuth {
        pos: 0,
        auth: Authorization::new(Subject::User(user), DocObject::Document, [right], sign),
    }
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(608);
    let n_users = 4u32;
    let rounds = 4usize;
    let initial = "abc";

    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites = make_sites(n_users, initial);
    let mut next_char = 0;

    let n = sites.len();
    let mut pending: Vec<Vec<Message<Char>>> = vec![Vec::new(); n];

    let broadcast = |msg: Message<Char>, from: usize, pending: &mut Vec<Vec<Message<Char>>>| {
        for (i, q) in pending.iter_mut().enumerate() {
            if i != from {
                q.push(msg.clone());
            }
        }
    };

    let describe = |m: &Message<Char>| -> String {
        match m {
            Message::Coop(q) => format!("Coop {:?} v{} op={:?}", q.ot.id, q.v, q.ot.top.op),
            Message::Admin(r) => format!("Admin {:?} ver{} op={:?}", r.admin, r.version, r.op),
            other => format!("{other:?}"),
        }
    };

    for round in 0..rounds {
        #[allow(clippy::needless_range_loop)] // `sites[i]` and `pending` are both indexed
        for i in 0..n {
            if rng.gen_bool(0.7) {
                if let Some(q) = random_coop(&mut sites[i], &mut rng, &mut next_char) {
                    println!("[r{round}] s{i} GEN  {}", describe(&Message::Coop(q.clone())));
                    broadcast(Message::Coop(q), i, &mut pending);
                }
            }
        }
        if rng.gen_bool(0.6) {
            let op = random_admin(&mut rng, n_users);
            if let Ok(r) = sites[0].admin_generate(op) {
                println!("[r{round}] s0 ADM  {}", describe(&Message::Admin(r.clone())));
                broadcast(Message::Admin(r), 0, &mut pending);
            }
        }

        for i in 0..n {
            pending[i].shuffle(&mut rng);
            let k = rng.gen_range(0..=pending[i].len());
            let rest = pending[i].split_off(k);
            for msg in std::mem::replace(&mut pending[i], rest) {
                println!("[r{round}] s{i} RECV {}", describe(&msg));
                sites[i].receive(msg).unwrap();
                for out in sites[i].drain_outbox() {
                    println!("[r{round}] s{i} OUT  {}", describe(&out));
                    broadcast(out, i, &mut pending);
                }
            }
        }
        for (i, s) in sites.iter().enumerate() {
            println!("[r{round}] s{i} doc={:?} ver={}", s.document().to_string(), s.version());
        }
    }

    println!("--- quiescence ---");
    loop {
        let mut moved = false;
        for i in 0..n {
            pending[i].shuffle(&mut rng);
            for msg in std::mem::take(&mut pending[i]) {
                println!("[q] s{i} RECV {}", describe(&msg));
                sites[i].receive(msg).unwrap();
                moved = true;
                for out in sites[i].drain_outbox() {
                    println!("[q] s{i} OUT  {}", describe(&out));
                    broadcast(out, i, &mut pending);
                }
            }
        }
        if !moved && pending.iter().all(|q| q.is_empty()) {
            break;
        }
    }

    println!("--- final ---");
    for (i, s) in sites.iter().enumerate() {
        println!(
            "s{i} doc={:?} ver={} queued={}",
            s.document().to_string(),
            s.version(),
            s.queued()
        );
    }
    for entry in sites[0].engine().log().iter() {
        let flags: Vec<_> = sites.iter().map(|s| s.flag_of(entry.id)).collect();
        println!("req {:?} inert={} flags={:?}", entry.id, entry.inert, flags);
    }
    println!("--- buffers ---");
    for (i, s) in sites.iter().enumerate() {
        println!("s{i}:");
        for (p, cell) in s.engine().buffer().cells().iter().enumerate() {
            let chain: Vec<String> = cell
                .chain
                .iter()
                .map(|l| {
                    format!(
                        "{}:{} v={:?} saw={:?}",
                        l.id.site,
                        l.id.seq,
                        l.value,
                        l.saw.iter().map(|s| (s.site, s.seq)).collect::<Vec<_>>()
                    )
                })
                .collect();
            println!(
                "  [{p}] elem={:?} orig={:?} ghost={} kills={} creator={:?} chain={:?}",
                cell.elem,
                cell.original,
                cell.ghost,
                cell.killers.len() + cell.anon_kills as usize,
                cell.creator.map(|c| (c.site, c.seq)),
                chain
            );
        }
    }
}

//! The per-participant site: Algorithms 1–4 of the paper.

use crate::error::CoreError;
use crate::request::{AdminProposal, CoopRequest, Flag, Message};
use crate::scheduler::{Pending, Scheduler, Slot};
use crate::shard::{DocumentId, FlagTable};
use dce_document::{Document, Element, Op};
use dce_obs::{DeferReason, EventKind, ObsHandle, ReqId};
use dce_ot::engine::{BatchPartition, Engine, Integration};
use dce_ot::ids::Clock;
use dce_ot::{Buffer, Cell, Log, RequestId};
use dce_policy::{Action, AdminLog, AdminOp, AdminRequest, Policy, PolicyVersion, UserId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One collaborating site: a user (or the administrator), their document
/// replica with its OT log `H`, their policy copy with its administrative
/// log `L`, the reception queues `F` (cooperative) and `Q` (administrative)
/// of Algorithm 1 — held by the causal-readiness [`Scheduler`] — and the
/// per-request flags.
#[derive(Debug, Clone)]
pub struct Site<E> {
    user: UserId,
    admin_id: UserId,
    /// The shard key: which shared document this site replicates. `ROOT`
    /// (`0`) for single-document sessions; the multi-document
    /// [`crate::engine::Engine`] assigns real ids.
    doc: DocumentId,
    engine: Engine<E>,
    /// The policy copy, shared copy-on-write: `check` reads go through the
    /// `Arc` with no clone or lock, administrative mutations go through
    /// `Arc::make_mut` — cloning only while an external snapshot (taken
    /// via [`Site::policy_snapshot`]) is still alive, then publishing the
    /// new version with a pointer swap. `PolicyIndex::clone` yields an
    /// empty index, so a copied policy starts with a private memo table
    /// and invalidation stays per-shard.
    policy: Arc<Policy>,
    admin_log: AdminLog,
    /// Per-request flags plus the tentative-generation-version side table
    /// (see [`FlagTable`]).
    flags: FlagTable,
    /// The reception queues `F` (cooperative) and `Q` (administrative),
    /// indexed by what each queued request is waiting for.
    sched: Scheduler<E>,
    /// Messages this site produced while *receiving* (the administrator's
    /// validation requests). The driver must broadcast these.
    outbox: Vec<Message<E>>,
    /// Requests denied by `Check_Remote`, for inspection and experiments.
    denials: Vec<RequestId>,
    /// Requests retroactively undone by policy enforcement.
    undone: Vec<RequestId>,
    /// Delegated proposals the administrator refused (proposer lacked a
    /// delegation, or the operation failed against the policy).
    rejected_proposals: Vec<AdminProposal>,
    /// Last heartbeat clock received per peer (GC stability tracking).
    peer_clocks: HashMap<UserId, Clock>,
    /// Observability capability (disabled by default). Deliberately *not*
    /// part of replicated state: excluded from [`Site::digest_into`],
    /// snapshots and checkpoints, so instrumentation never perturbs
    /// `dce-check`'s state-space dedupe.
    obs: ObsHandle,
}

/// The [`dce_obs::ReqId`] coordinates of an OT request id.
fn obs_id(id: RequestId) -> ReqId {
    ReqId::new(id.site, id.seq)
}

/// What a parked slot is waiting for, in event terms (`None` for ready).
fn defer_reason(slot: &Slot) -> Option<DeferReason> {
    match slot {
        Slot::Ready => None,
        Slot::WaitVersion(v) => Some(DeferReason::MissingVersion(*v)),
        Slot::WaitClock(id) => Some(DeferReason::MissingRequest(obs_id(*id))),
    }
}

/// An opaque full-state checkpoint of a [`Site`], including its reception
/// queues — see [`Site::checkpoint`]. Boxed so fork-heavy explorers can
/// keep many of them on an explicit work stack cheaply.
#[derive(Debug, Clone)]
pub struct Checkpoint<E>(Box<Site<E>>);

impl<E: Element> Checkpoint<E> {
    /// Materializes an independent site from the checkpoint (state
    /// forking: the checkpoint stays reusable).
    pub fn materialize(&self) -> Site<E> {
        (*self.0).clone()
    }
}

impl<E: Element> Site<E> {
    /// Creates the administrator site (site id = user id).
    pub fn new_admin(user: UserId, d0: Document<E>, policy: Policy) -> Self {
        Self::build(user, user, d0, policy)
    }

    /// Creates a regular user site that recognises `admin_id` as the group
    /// administrator.
    pub fn new_user(user: UserId, admin_id: UserId, d0: Document<E>, policy: Policy) -> Self {
        Self::build(user, admin_id, d0, policy)
    }

    fn build(user: UserId, admin_id: UserId, d0: Document<E>, policy: Policy) -> Self {
        Site {
            user,
            admin_id,
            doc: DocumentId::ROOT,
            engine: Engine::new(user, d0),
            policy: Arc::new(policy),
            admin_log: AdminLog::new(),
            flags: FlagTable::new(),
            sched: Scheduler::new(),
            outbox: Vec::new(),
            denials: Vec::new(),
            undone: Vec::new(),
            rejected_proposals: Vec::new(),
            peer_clocks: HashMap::new(),
            obs: ObsHandle::default(),
        }
    }

    /// Re-keys this site onto document `doc` (builder-style). Constructors
    /// default to [`DocumentId::ROOT`]; the multi-document engine and the
    /// socket stack assign real shard keys.
    pub fn with_document(mut self, doc: DocumentId) -> Self {
        self.doc = doc;
        self
    }

    /// Re-keys this site onto document `doc` in place.
    pub fn set_document(&mut self, doc: DocumentId) {
        self.doc = doc;
    }

    /// The document (shard) this site replicates.
    pub fn doc(&self) -> DocumentId {
        self.doc
    }

    /// Attaches an observability handle (builder-style). All sites of a
    /// group typically share one handle, merging their events into a
    /// single lamport-ordered journal.
    pub fn with_observability(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches (or replaces) the observability handle in place.
    pub fn set_observability(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn observability(&self) -> &ObsHandle {
        &self.obs
    }

    /// Emits one protocol event stamped with this site's identity and
    /// current policy version. A single branch when observability is off.
    #[inline]
    fn emit(&self, kind: EventKind) {
        self.obs.emit(self.user, self.policy.version(), kind);
    }

    /// This site's user identity.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// `true` for the administrator site.
    pub fn is_admin(&self) -> bool {
        self.user == self.admin_id
    }

    /// The current visible document.
    pub fn document(&self) -> Document<E> {
        self.engine.document()
    }

    /// The local policy copy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// A copy-on-write snapshot of the policy copy: one refcount bump, no
    /// clone, no lock. Checks against the snapshot stay consistent while
    /// administrative mutations publish new versions concurrently — the
    /// read-mostly `Check_Local` path of the multi-document engine.
    pub fn policy_snapshot(&self) -> dce_policy::SharedPolicy {
        self.policy.clone()
    }

    /// Current policy version of this copy.
    pub fn version(&self) -> PolicyVersion {
        self.policy.version()
    }

    /// The administrative log `L`.
    pub fn admin_log(&self) -> &AdminLog {
        &self.admin_log
    }

    /// The OT engine (document log `H`, clocks, buffer).
    pub fn engine(&self) -> &Engine<E> {
        &self.engine
    }

    /// Flag of a cooperative request, if known at this site.
    pub fn flag_of(&self, id: RequestId) -> Option<Flag> {
        self.flags.flag_of(id)
    }

    /// All request flags known at this site (order unspecified). Used by
    /// the convergence oracle to compare flag tables across replicas.
    pub fn flags(&self) -> impl Iterator<Item = (RequestId, Flag)> + '_ {
        self.flags.iter()
    }

    /// The per-request flag table of this shard.
    pub fn flag_table(&self) -> &FlagTable {
        &self.flags
    }

    /// Requests rejected by `Check_Remote` at this site.
    pub fn denials(&self) -> &[RequestId] {
        &self.denials
    }

    /// Requests retroactively undone at this site.
    pub fn undone(&self) -> &[RequestId] {
        &self.undone
    }

    /// Proposals this administrator refused (diagnostics).
    pub fn rejected_proposals(&self) -> &[AdminProposal] {
        &self.rejected_proposals
    }

    /// Takes (and clears) the accumulated `Check_Remote` denials. The
    /// diagnostics vectors grow for the whole session otherwise; callers
    /// that consume them incrementally should prefer these `drain_*`
    /// accessors over the borrowing ones.
    pub fn drain_denials(&mut self) -> Vec<RequestId> {
        std::mem::take(&mut self.denials)
    }

    /// Takes (and clears) the accumulated retroactive-undo records.
    pub fn drain_undone(&mut self) -> Vec<RequestId> {
        std::mem::take(&mut self.undone)
    }

    /// Takes (and clears) the refused delegated proposals.
    pub fn drain_rejected_proposals(&mut self) -> Vec<AdminProposal> {
        std::mem::take(&mut self.rejected_proposals)
    }

    /// Number of queued (not yet causally ready) messages.
    pub fn queued(&self) -> usize {
        self.sched.len()
    }

    /// Number of un-drained outbox messages. A site is *quiescent* — and
    /// therefore snapshottable without losing in-flight obligations —
    /// only when both this and [`Site::queued`] are zero.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Restores the transient-but-behavioral state a wire snapshot
    /// deliberately omits: heartbeat-derived peer clocks and the
    /// diagnostics vectors. All of these feed [`Site::digest_into`], so a
    /// durable store that wants a recovered site to be *digest-identical*
    /// to the never-crashed one must persist and restore them alongside
    /// the replicated state (`dce-store` snapshots carry them as a
    /// supplement next to the `dce-net` snapshot body).
    pub fn restore_transients(
        &mut self,
        peer_clocks: HashMap<UserId, Clock>,
        denials: Vec<RequestId>,
        undone: Vec<RequestId>,
        rejected_proposals: Vec<AdminProposal>,
    ) {
        self.peer_clocks = peer_clocks;
        self.denials = denials;
        self.undone = undone;
        self.rejected_proposals = rejected_proposals;
    }

    /// Captures the replicated state for transfer to a joining site:
    /// `(buffer cells, log, clock, pruned-inert set, pruned count, policy,
    /// admin log, flags, tentative generation versions, pruned-flag
    /// fold)`. Queues, outbox and local diagnostics are deliberately not
    /// part of a snapshot.
    #[allow(clippy::type_complexity)]
    pub fn snapshot_parts(
        &self,
    ) -> (
        Vec<Cell<E>>,
        Log<E>,
        Clock,
        HashSet<RequestId>,
        usize,
        Policy,
        AdminLog,
        Vec<(RequestId, Flag)>,
        Vec<(RequestId, PolicyVersion)>,
        u64,
    ) {
        (
            self.engine.buffer().cells().to_vec(),
            self.engine.log().clone(),
            self.engine.clock().clone(),
            self.engine.pruned_inert().clone(),
            self.engine.pruned_count(),
            Policy::clone(&self.policy),
            self.admin_log.clone(),
            self.flags.flags_sorted(),
            self.flags.tentative_sorted(),
            self.flags.pruned_fold(),
        )
    }

    /// Reconstructs a site for `user` from snapshot parts (the receiving
    /// half of a state transfer).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn from_snapshot_parts(
        user: UserId,
        admin_id: UserId,
        cells: Vec<Cell<E>>,
        log: Log<E>,
        clock: Clock,
        pruned_inert: HashSet<RequestId>,
        pruned_count: usize,
        policy: Policy,
        admin_log: AdminLog,
        flags: Vec<(RequestId, Flag)>,
        tentative_v: Vec<(RequestId, PolicyVersion)>,
        flags_pruned_fold: u64,
    ) -> Self {
        Site {
            user,
            admin_id,
            doc: DocumentId::ROOT,
            engine: Engine::from_parts(
                user,
                Buffer::from_cells(cells),
                log,
                clock,
                pruned_inert,
                pruned_count,
            ),
            policy: Arc::new(policy),
            admin_log,
            flags: FlagTable::from_parts(flags, tentative_v, flags_pruned_fold),
            sched: Scheduler::new(),
            outbox: Vec::new(),
            denials: Vec::new(),
            undone: Vec::new(),
            rejected_proposals: Vec::new(),
            peer_clocks: HashMap::new(),
            obs: ObsHandle::default(),
        }
    }

    /// Clones this site's replicated state (document, logs, policy, flags)
    /// into a fresh site owned by `user` — how a joining participant
    /// bootstraps from any existing replica (paper §3.3: "users may join
    /// the group to participate…"). In-flight queues and outbox are *not*
    /// inherited; the network will deliver the newcomer's own copies.
    pub fn rejoin_as(&self, user: UserId) -> Self {
        let mut engine = self.engine.clone();
        engine.rebind_site(user);
        Site {
            user,
            admin_id: self.admin_id,
            doc: self.doc,
            engine,
            // An Arc clone: the donor and the newcomer share the snapshot
            // until the next administrative mutation copies-on-write.
            policy: self.policy.clone(),
            admin_log: self.admin_log.clone(),
            flags: self.flags.clone(),
            sched: Scheduler::new(),
            outbox: Vec::new(),
            denials: Vec::new(),
            undone: Vec::new(),
            rejected_proposals: Vec::new(),
            peer_clocks: HashMap::new(),
            obs: ObsHandle::default(),
        }
    }

    /// Captures a *complete* checkpoint of this site — replicated state,
    /// reception queues, outboxes and diagnostics alike. Unlike
    /// [`Site::snapshot_parts`] (state transfer to a joining peer, which
    /// deliberately drops the queues), a checkpoint is a fork point: state
    /// explorers such as `dce-check` branch one prefix of a session into
    /// many continuations without replaying it.
    /// Checkpoints carry no observability handle: instrumentation records
    /// the path taken, not the state reached, so a restored site comes
    /// back with recording disabled and counters at zero.
    pub fn checkpoint(&self) -> Checkpoint<E> {
        let mut copy = self.clone();
        copy.obs = ObsHandle::default();
        Checkpoint(Box::new(copy))
    }

    /// Restores this site to a previously captured [`Checkpoint`],
    /// discarding everything that happened since.
    pub fn restore(&mut self, checkpoint: &Checkpoint<E>) {
        *self = (*checkpoint.0).clone();
    }

    /// Feeds every behavioral component of the site into `h`: identity,
    /// engine (buffer, log, clock), policy, administrative log, flags,
    /// queued messages, outboxes, diagnostics and peer clocks. Work
    /// counters and absolute arrival stamps are excluded (they record the
    /// path taken, not the state reached), so two delivery orders joining
    /// on the same state collide — the dedupe key of `dce-check`.
    pub fn digest_into<H: std::hash::Hasher>(&self, h: &mut H)
    where
        E: std::hash::Hash,
    {
        use std::hash::Hash;
        self.user.hash(h);
        self.admin_id.hash(h);
        self.doc.hash(h);
        self.engine.digest_into(h);
        self.policy.hash(h);
        self.admin_log.hash(h);
        self.flags.digest_into(h);
        self.sched.digest_into(h);
        self.outbox.hash(h);
        self.denials.hash(h);
        self.undone.hash(h);
        self.rejected_proposals.hash(h);
        let mut peers: Vec<(UserId, &Clock)> =
            self.peer_clocks.iter().map(|(u, c)| (*u, c)).collect();
        peers.sort_unstable_by_key(|(u, _)| *u);
        peers.hash(h);
    }

    /// The site's behavioral state digest (see [`Site::digest_into`]).
    pub fn state_digest(&self) -> u64
    where
        E: std::hash::Hash,
    {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.digest_into(&mut h);
        std::hash::Hasher::finish(&h)
    }

    /// Digest of the *replicated* state only: document content, policy,
    /// policy version, administrative log and the behavioral flag-table
    /// digest (settled-entry fold plus tentative entries, so replicas
    /// that pruned stable flags at different moments still agree).
    /// Unlike [`Site::state_digest`] it excludes everything that
    /// legitimately differs between replicas — identity, outbox, defer
    /// queue, diagnostics, peer clocks, OT log order — so two *different
    /// sites* of one converged session produce the *same* value. This is
    /// the cross-process convergence check of the socket deployment:
    /// `DefaultHasher` is keyed with constants, so server and load
    /// generator compute comparable digests in separate processes.
    pub fn replica_digest(&self) -> u64
    where
        E: std::hash::Hash,
    {
        use std::hash::Hash;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.replica_digest_parts().hash(&mut h);
        std::hash::Hasher::finish(&h)
    }

    /// The component hashes behind [`Site::replica_digest`]: document,
    /// policy, administrative log, flag table — in that order. When two
    /// replicas disagree, comparing parts pinpoints *which* layer
    /// diverged; the load generator prints these in its divergence
    /// report.
    pub fn replica_digest_parts(&self) -> [u64; 4]
    where
        E: std::hash::Hash,
    {
        use std::hash::{Hash, Hasher};
        fn part<T: Hash + ?Sized>(value: &T) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            value.hash(&mut h);
            h.finish()
        }
        let doc = self.engine.document();
        [part(doc.as_slice()), part(&*self.policy), part(&self.admin_log), self.flags.digest()]
    }

    /// Drops the first `n` entries of the cooperative log (used by
    /// [`crate::gc::compact`] once they are stable group-wide).
    pub fn prune_log_prefix(&mut self, n: usize) {
        self.engine.prune_prefix(n);
    }

    /// Takes the messages this site emitted while processing receptions
    /// (the administrator's `Validate` requests). The caller must
    /// broadcast them to the group.
    pub fn drain_outbox(&mut self) -> Vec<Message<E>> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Algorithm 2: local generation.
    // ------------------------------------------------------------------

    /// Generates a local cooperative operation: checks it against the
    /// *local* policy copy (`Check_Local`), executes it, and returns the
    /// request to broadcast. The administrator's own edits bypass the check
    /// (§3.3: the administrator "can also modify directly the shared
    /// documents") and are born `Valid`; everyone else's are `Tentative`.
    pub fn generate(&mut self, op: Op<E>) -> Result<CoopRequest<E>, CoreError> {
        if !self.is_admin() {
            if let Some(action) = Action::for_op(&op) {
                let decision = self.policy.check(self.user, &action);
                if !decision.granted() {
                    self.emit(EventKind::CheckLocalDenied { user: self.user });
                    return Err(CoreError::AccessDenied { user: self.user, action, decision });
                }
            }
        }
        let ot = self.engine.generate(op)?;
        if self.is_admin() {
            self.flags.set_flag(ot.id, Flag::Valid);
        } else {
            self.flags.mark_tentative(ot.id, self.policy.version());
        }
        self.emit(EventKind::ReqGenerated { id: obs_id(ot.id) });
        self.emit(EventKind::ReqExecuted { id: obs_id(ot.id) });
        // A queued remote request can, after a snapshot rejoin, be parked
        // on one of this site's own sequence numbers; the local generation
        // satisfies it. (Re-parking only — processing happens at the next
        // reception, like the scan loop.)
        self.wake_clock_reached(ot.id);
        Ok(CoopRequest { ot, v: self.policy.version() })
    }

    // ------------------------------------------------------------------
    // Administrative generation (administrator only).
    // ------------------------------------------------------------------

    /// Issues an administrative operation: applies it to the local policy
    /// copy, bumps the version, records it in `L`, enforces it
    /// retroactively, and returns the request to broadcast.
    pub fn admin_generate(&mut self, op: AdminOp) -> Result<AdminRequest, CoreError> {
        if !self.is_admin() {
            return Err(CoreError::NotAdministrator { user: self.user });
        }
        // Copy-on-write: clones the policy only if an external snapshot is
        // still alive, then publishes the mutated version in place.
        let policy = Arc::make_mut(&mut self.policy);
        op.apply_to(policy)?;
        let version = policy.bump_version();
        let request = AdminRequest { admin: self.user, version, op };
        self.admin_log.push(request.clone());
        let restrictive = request.is_restrictive();
        if let AdminOp::Validate { site, seq } = &request.op {
            let id = ReqId::new(*site, *seq);
            self.emit(EventKind::ValidationIssued { id, version });
            // The administrator applies its own validation at issue time.
            self.emit(EventKind::ValidationConsumed { id, version });
        }
        // Emitted before enforcement so every ReqUndone is preceded by
        // its restrictive cause (the undo-follows-restriction oracle).
        self.emit(EventKind::AdminApplied { version, restrictive });
        if restrictive {
            self.enforce_policy();
        }
        Ok(request)
    }

    /// Builds this site's heartbeat for the group (send periodically).
    pub fn make_heartbeat(&self) -> Message<E> {
        Message::Heartbeat { from: self.user, clock: self.engine.clock().clone() }
    }

    /// The heartbeat clocks received so far, per peer.
    pub fn peer_clocks(&self) -> &std::collections::HashMap<UserId, Clock> {
        &self.peer_clocks
    }

    /// `true` once a stability horizon is computable at all: a heartbeat
    /// clock is on file for every *other* member of the policy's user set.
    /// The always-on compactor gates on this before journaling a
    /// compaction attempt — [`Site::auto_compact`] without a horizon is a
    /// no-op that would still cost a WAL record per trigger.
    pub fn horizon_ready(&self) -> bool {
        self.policy
            .users()
            .iter()
            .all(|user| *user == self.user || self.peer_clocks.contains_key(user))
    }

    /// Compacts the settled log prefix using the heartbeat-derived
    /// stability horizon: an entry may be dropped only once every *other*
    /// member of the subject set `S` has acknowledged it (and it is no
    /// longer tentative). Members that have never sent a heartbeat hold
    /// compaction back — safe by construction. Returns the number of log
    /// entries reclaimed.
    ///
    /// The diagnostics vectors ([`Site::denials`], [`Site::undone`],
    /// [`Site::rejected_proposals`]) are trimmed along the way: entries
    /// below the stability horizon can never change flag again, so keeping
    /// them only grows memory over a long session. Callers wanting the
    /// full record should [`Site::drain_denials`] (etc.) before compacting.
    ///
    /// The admin log is compacted too: non-restrictive entries (every
    /// `Validate`, grants, membership additions) are never consulted by
    /// `Check_Remote` at any remote context version, so
    /// [`AdminLog::compact_non_restrictive`] bounds the retained log by
    /// `restrictive_count() + 1`. Admin-log equality and hashing are
    /// behavioral (last version + restrictive entries), so replicas that
    /// prune at different times still digest-converge.
    pub fn auto_compact(&mut self) -> usize {
        let mut clocks: Vec<Clock> = vec![self.engine.clock().clone()];
        for user in self.policy.users() {
            if *user == self.user {
                continue;
            }
            match self.peer_clocks.get(user) {
                Some(c) => clocks.push(c.clone()),
                // A member we have not heard from: nothing is stable.
                None => return 0,
            }
        }
        let horizon = crate::gc::stability_horizon(clocks.iter());
        self.admin_log.compact_non_restrictive();
        self.denials.retain(|id| !horizon.contains(*id));
        self.undone.retain(|id| !horizon.contains(*id));
        // Refused proposals never entered the causal order at all; once the
        // group has a horizon they are settled history.
        self.rejected_proposals.clear();
        // The form-dropping prunes below (log prefix, flag rows, chain
        // links) additionally require that this site has *delivered*
        // everything any heartbeat announced — every peer clock pointwise
        // within our own. A heartbeat can outrun the traffic it vouches
        // for: a peer may announce ops we have not yet received, and an
        // op generated before that peer's heartbeat can be concurrent
        // with entries below the horizon — integrating it still needs
        // their forms for transformation (and their chain links for the
        // update tournament). Once every announced op has landed, any
        // request still in flight was generated after its site's
        // heartbeat, so its context covers the whole horizon and the
        // pruned forms can never be consulted again.
        let clock = self.engine.clock();
        let delivered_all_announced =
            self.peer_clocks.values().all(|c| c.iter().all(|(site, n)| clock.get(site) >= n));
        if !delivered_all_announced {
            self.obs.set_gauge("site.log_len", self.engine.log().len() as u64);
            self.obs.set_gauge("site.admin_log_len", self.admin_log.len() as u64);
            return 0;
        }
        let stable = crate::gc::settled_prefix(self, &horizon);
        if self.obs.enabled() {
            // The span-closing edge: these log entries are about to be
            // reclaimed, so the requests are stable group-wide.
            for id in &stable {
                self.emit(EventKind::ReqStable { id: obs_id(*id) });
            }
        }
        let reclaimed = stable.len();
        self.prune_log_prefix(reclaimed);
        // The reclaimed entries' flags are settled and stable group-wide:
        // no transition, duplicate or retroactive check can touch them
        // again, so the flag table sheds them too (folding their hashes
        // into its pruned accumulator keeps digests comparable with
        // replicas that compacted at other moments, or never). Without
        // this the flag table is the one structure that still grows with
        // session length rather than with the live log.
        for id in stable {
            self.flags.prune_settled(id);
        }
        // Provenance chains are the other per-update structure; the
        // delivered-everything gate above is exactly the caller guarantee
        // `dce_ot::Engine::prune_chains` requires for its collapse.
        self.engine.prune_chains(&horizon);
        // Compaction is exactly when the log-length gauges move most;
        // left to the next drain they would overstate until new traffic
        // arrives (which, at quiescence, never comes).
        self.obs.set_gauge("site.log_len", self.engine.log().len() as u64);
        self.obs.set_gauge("site.admin_log_len", self.admin_log.len() as u64);
        reclaimed
    }

    /// Proposes an administrative operation as a *delegate*: checked
    /// optimistically against the local policy's delegation set, then sent
    /// to the administrator, who re-checks and sequences it. The local
    /// check keeps obviously unauthorized proposals off the network; the
    /// administrator's check is authoritative.
    pub fn propose_admin(&self, op: AdminOp) -> Result<AdminProposal, CoreError> {
        if self.is_admin() {
            return Err(CoreError::Protocol("the administrator issues operations directly".into()));
        }
        if !self.policy.is_delegate(self.user) {
            return Err(CoreError::NotAdministrator { user: self.user });
        }
        if !op.delegable() {
            return Err(CoreError::Protocol(format!("operation {op} cannot be delegated")));
        }
        Ok(AdminProposal { from: self.user, op })
    }

    // ------------------------------------------------------------------
    // Algorithm 1: reception.
    // ------------------------------------------------------------------

    /// Receives a message from the network: enqueues it and processes every
    /// request that became causally ready (Algorithms 3 and 4).
    pub fn receive(&mut self, msg: Message<E>) -> Result<(), CoreError> {
        match msg {
            Message::Coop(q) => {
                // Dedup against both the processed history *and* the queue:
                // a duplicate arriving before its original has been
                // processed (not yet causally ready) would otherwise be
                // admitted twice.
                if !self.engine.has_seen(q.ot.id) && !self.sched.holds_coop(q.ot.id) {
                    let slot = self.classify_coop(&q);
                    if self.obs.enabled() {
                        let id = obs_id(q.ot.id);
                        self.emit(EventKind::ReqReceived { id });
                        if let Some(reason) = defer_reason(&slot) {
                            self.emit(EventKind::ReqDeferred { id, reason });
                        }
                    }
                    self.sched.admit_coop(q, slot);
                } else if self.obs.enabled() {
                    self.emit(EventKind::ReqDuplicate { id: obs_id(q.ot.id) });
                }
            }
            Message::Admin(r) => {
                // Administrative requests are totally ordered by policy
                // version, so an equal version already queued is the same
                // request replayed.
                if r.version > self.policy.version() && !self.sched.holds_admin(r.version) {
                    let slot = self.classify_admin(&r);
                    if self.obs.enabled() {
                        self.emit(EventKind::AdminReceived { version: r.version });
                        if let Some(reason) = defer_reason(&slot) {
                            self.emit(EventKind::AdminDeferred { version: r.version, reason });
                        }
                    }
                    self.sched.admit_admin(r, slot);
                }
            }
            Message::Heartbeat { from, clock } => {
                // Keep the pointwise maximum per peer (heartbeats may be
                // reordered in flight).
                let entry = self.peer_clocks.entry(from).or_default();
                let mut merged = Clock::new();
                for (site, n) in entry.iter() {
                    merged.set(site, n.max(clock.get(site)));
                }
                for (site, n) in clock.iter() {
                    merged.set(site, n.max(merged.get(site)));
                }
                *entry = merged;
            }
            Message::Proposal(p) => {
                // Only the administrator acts on proposals.
                if self.is_admin() {
                    if self.policy.is_delegate(p.from) && p.op.delegable() {
                        match self.admin_generate(p.op.clone()) {
                            Ok(r) => self.outbox.push(Message::Admin(r)),
                            Err(_) => self.rejected_proposals.push(p),
                        }
                    } else {
                        self.rejected_proposals.push(p);
                    }
                }
            }
        }
        self.drain()
    }

    /// Fixpoint over the scheduler's ready lane: keep processing ready
    /// requests until nothing changes. Preserves the scan loop's
    /// processing order — per iteration at most one administrative request
    /// (version order is total, so at most one is ever ready), then the
    /// earliest-arrived ready cooperative request — but each delivered
    /// message wakes exactly its dependents instead of re-scanning `F`/`Q`.
    fn drain(&mut self) -> Result<(), CoreError> {
        let timer = self.obs.enabled().then(std::time::Instant::now);
        let result = self.drain_inner();
        if let Some(start) = timer {
            self.obs.observe_hist("site.drain_ns", start.elapsed().as_nanos() as u64);
            self.obs.set_gauge("site.queue_depth_ready", self.sched.ready_len() as u64);
            self.obs.set_gauge("site.queue_depth_parked", self.sched.parked_len() as u64);
            self.obs.set_gauge("site.log_len", self.engine.log().len() as u64);
            self.obs.set_gauge("site.admin_log_len", self.admin_log.len() as u64);
        }
        result
    }

    fn drain_inner(&mut self) -> Result<(), CoreError> {
        // One batch-partition cache for the whole ready run: a causally
        // chained run of K requests drains as K loop iterations (each
        // integration wakes exactly its successor), and the cache turns the
        // K independent `ComputeFF` partitions into one partition advanced
        // K times. It lives only within this call — any path that rewrites
        // log forms behind the OT engine's back (retroactive undo inside
        // `process_admin`) resets it below.
        let mut cache: Option<BatchPartition<E>> = None;
        loop {
            // Version parking is keyed on the *local* counter, which can
            // also advance outside reception (local `admin_generate`), so
            // re-check the prefix every iteration instead of hooking every
            // bump site.
            self.wake_version_reached();
            let mut progressed = false;

            if let Some(r) = self.sched.pop_ready_admin() {
                // Re-verify at pop: the counter may have advanced past a
                // parked request since classification.
                if r.version == self.policy.version() + 1 {
                    self.process_admin(r)?;
                    // Retroactive enforcement may have rewritten log forms
                    // (undo flips entries inert in place): the cached
                    // partition no longer mirrors the log.
                    cache = None;
                }
                progressed = true;
            }

            if let Some(q) = self.sched.pop_ready_coop() {
                if !self.engine.has_seen(q.ot.id) {
                    let id = q.ot.id;
                    self.process_coop(q, &mut cache)?;
                    self.wake_clock_reached(id);
                }
                progressed = true;
            }

            if !progressed {
                return Ok(());
            }
        }
    }

    /// Classifies a cooperative request (Algorithm 3 readiness): ready
    /// when its OT context is satisfied *and* the policy copy has reached
    /// the version it was checked under (`q.v ≤ version`); otherwise
    /// parked on the missing version or the first missing causal
    /// predecessor. Both conditions are monotone, so parking on one
    /// blocker at a time is sound.
    fn classify_coop(&self, q: &CoopRequest<E>) -> Slot {
        if q.v > self.policy.version() {
            return Slot::WaitVersion(q.v);
        }
        if self.engine.is_ready(&q.ot) {
            return Slot::Ready;
        }
        let clock = self.engine.clock();
        let site = q.ot.id.site;
        if q.ot.id.seq > clock.get(site) + 1 {
            // Missing site-FIFO predecessor. Park on the *immediate*
            // predecessor, not the next id the clock expects: per-site
            // integration is sequential, so integrating `seq - 1` is the
            // exact event that makes this request's site-FIFO condition
            // hold — one targeted wake instead of waking (and re-parking)
            // the whole chain on every integration.
            return Slot::WaitClock(RequestId::new(site, q.ot.id.seq - 1));
        }
        // Context gap: park on the *last* request needed from the first
        // lagging site. Sequential per-site integration again makes its
        // arrival the exact unblocking event for that component; at most
        // one re-park per distinct lagging site.
        let missing =
            q.ot.ctx
                .iter()
                .find_map(|(s, need)| (clock.get(s) < need).then(|| RequestId::new(s, need)));
        match missing {
            Some(id) => Slot::WaitClock(id),
            // Unreachable (is_ready would have been true), but classify
            // conservatively rather than panic.
            None => Slot::Ready,
        }
    }

    /// Classifies an administrative request with `version >` the local
    /// counter (Algorithm 4 readiness): ready when it is the next version
    /// in the total order and — for a validation — its target has been
    /// integrated (a validation must not overtake the request it
    /// validates).
    fn classify_admin(&self, r: &AdminRequest) -> Slot {
        if r.version > self.policy.version() + 1 {
            return Slot::WaitVersion(r.version - 1);
        }
        if let AdminOp::Validate { site, seq } = &r.op {
            let target = RequestId::new(*site, *seq);
            if !self.engine.has_seen(target) {
                return Slot::WaitClock(target);
            }
        }
        Slot::Ready
    }

    /// Unparks everything waiting for a policy version the local counter
    /// has reached, re-classifying each waiter.
    fn wake_version_reached(&mut self) {
        let reached = self.policy.version();
        for pending in self.sched.take_version_waiters(reached) {
            self.requeue(pending);
        }
    }

    /// Unparks everything waiting for `id`, re-classifying each waiter.
    fn wake_clock_reached(&mut self, id: RequestId) {
        for pending in self.sched.take_clock_waiters(id) {
            self.requeue(pending);
        }
    }

    /// Re-files a woken message: dropped when it became stale while parked
    /// (the queue-hygiene `retain` of the scan loop), re-parked otherwise.
    fn requeue(&mut self, pending: Pending<E>) {
        match pending {
            Pending::Coop { arrival, q } => {
                if self.engine.has_seen(q.ot.id) {
                    self.sched.release_coop(q.ot.id);
                } else {
                    let slot = self.classify_coop(&q);
                    self.sched.park(Pending::Coop { arrival, q }, slot);
                }
            }
            Pending::Admin(r) => {
                if r.version <= self.policy.version() {
                    self.sched.release_admin(r.version);
                } else {
                    let slot = self.classify_admin(&r);
                    self.sched.park(Pending::Admin(r), slot);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 3: reception of a cooperative request.
    // ------------------------------------------------------------------

    fn process_coop(
        &mut self,
        q: CoopRequest<E>,
        cache: &mut Option<BatchPartition<E>>,
    ) -> Result<(), CoreError> {
        let id = q.ot.id;
        let action = Action::for_op(&q.ot.top.op);

        // Check_Remote: the request was granted at its origin under policy
        // version q.v; it stays granted unless a concurrent restrictive
        // administrative request revokes the access it relied on.
        let denied = match &action {
            Some(action) => {
                self.admin_log.check_remote(q.user(), action, q.v, &self.policy).is_some()
            }
            None => false,
        };

        if denied {
            self.engine
                .integrate_inert_batched(&q.ot, cache)
                .map_err(|e| CoreError::Protocol(e.to_string()))?;
            self.flags.settle(id, Flag::Invalid);
            self.denials.push(id);
            self.emit(EventKind::ReqDenied { id: obs_id(id) });
            return Ok(());
        }

        let outcome = self
            .engine
            .integrate_batched(&q.ot, cache)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;

        match outcome {
            Integration::Inert => {
                // An ancestor of the request is inert here: the element it
                // operates on does not exist, so the request is stored
                // invalid.
                self.flags.settle(id, Flag::Invalid);
                self.emit(EventKind::ReqInert { id: obs_id(id) });
            }
            Integration::Executed(_) => {
                self.emit(EventKind::ReqExecuted { id: obs_id(id) });
                if q.user() == self.admin_id {
                    // The administrator's own edits are valid everywhere.
                    self.flags.settle(id, Flag::Valid);
                } else if self.is_admin() {
                    // Algorithm 3, administrator side: validate the request
                    // and broadcast the validation.
                    self.flags.settle(id, Flag::Valid);
                    let validation =
                        self.admin_generate(AdminOp::Validate { site: id.site, seq: id.seq })?;
                    self.outbox.push(Message::Admin(validation));
                } else {
                    self.flags.mark_tentative(id, q.v);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Algorithm 4: reception of an administrative request.
    // ------------------------------------------------------------------

    fn process_admin(&mut self, r: AdminRequest) -> Result<(), CoreError> {
        match &r.op {
            AdminOp::Validate { site, seq } => {
                let target = RequestId::new(*site, *seq);
                // The admissibility rule guarantees the target is here.
                // Only tentative requests get promoted: a request this site
                // stored invalid stays invalid (the validation was issued
                // before the restriction that killed it — impossible by
                // version ordering — or the target depends on an element
                // that never existed here).
                if self.flag_of(target) == Some(Flag::Tentative) {
                    self.flags.settle(target, Flag::Valid);
                } else {
                    self.flags.clear_tentative(target);
                }
                let version = Arc::make_mut(&mut self.policy).bump_version();
                self.admin_log.push(r);
                self.emit(EventKind::ValidationConsumed { id: obs_id(target), version });
                self.emit(EventKind::AdminApplied { version, restrictive: false });
            }
            _ => {
                let policy = Arc::make_mut(&mut self.policy);
                r.op.apply_to(policy)?;
                let version = policy.bump_version();
                debug_assert_eq!(version, r.version);
                let restrictive = r.is_restrictive();
                self.admin_log.push(r);
                // Before enforcement: the undo oracle requires the
                // restrictive AdminApplied to precede every ReqUndone.
                self.emit(EventKind::AdminApplied { version, restrictive });
                if restrictive {
                    self.enforce_policy();
                }
            }
        }
        Ok(())
    }

    /// Retroactive enforcement (§4.2, first scenario): every *tentative*
    /// request the new policy no longer grants is undone — together with
    /// the requests that semantically depend on it, whose target element
    /// disappears with it.
    ///
    /// The verdict for each tentative request is computed with the *same*
    /// canonical decision every receiver uses in `Check_Remote`: "is there
    /// a restrictive administrative request concurrent with `q` (version
    /// `> q.v`) whose scope covers `q`'s access?" — answered by
    /// [`AdminLog::check_remote`] against the generation version recorded
    /// in `tentative_v`. Re-checking against the full *current* policy
    /// would be wrong: non-restrictive drift (e.g. a `SetGroup` shrinking
    /// a group whose grant shadowed an old revoke) can flip a first-match
    /// walk of the authorization list without any restrictive entry
    /// targeting the request, making the origin undo an operation that
    /// every other site — and the administrator, who decides validation —
    /// still grants. Because administrative requests apply in version
    /// order everywhere, the log-window decision is identical at every
    /// site, so a request is undone either everywhere or nowhere.
    fn enforce_policy(&mut self) {
        let victims: Vec<RequestId> = self
            .engine
            .log()
            .iter()
            .filter(|e| !e.inert)
            .filter(|e| self.flag_of(e.id) == Some(Flag::Tentative))
            .filter(|e| match Action::for_op(&e.base) {
                Some(action) => {
                    let v = self.flags.tentative_version(e.id);
                    self.admin_log.check_remote(e.id.site, &action, v, &self.policy).is_some()
                }
                None => false,
            })
            .map(|e| e.id)
            .collect();

        for victim in victims {
            // A victim may already have been undone as a dependent of an
            // earlier one.
            if self.engine.log().get(victim).map(|e| e.inert).unwrap_or(true) {
                continue;
            }
            let cascade = self.engine.undo(victim).expect("tentative live request is undoable");
            for id in cascade {
                self.flags.settle(id, Flag::Invalid);
                self.undone.push(id);
                self.emit(EventKind::ReqUndone { id: obs_id(id) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_document::{Char, CharDocument};
    use dce_policy::{Authorization, DocObject, Right, Sign, Subject};

    #[test]
    fn delegation_lifecycle() {
        let (mut adm, mut s1, mut s2) = group("abc");
        // Without a delegation, proposing fails locally.
        assert!(matches!(
            s1.propose_admin(AdminOp::AddUser(9)),
            Err(CoreError::NotAdministrator { user: 1 })
        ));
        // The admin delegates to s1.
        let d = adm.admin_generate(AdminOp::Delegate(1)).unwrap();
        s1.receive(Message::Admin(d.clone())).unwrap();
        s2.receive(Message::Admin(d)).unwrap();
        assert!(s1.policy().is_delegate(1));

        // s1 proposes adding a user; the admin sequences it.
        let p = s1.propose_admin(AdminOp::AddUser(9)).unwrap();
        adm.receive(Message::Proposal(p)).unwrap();
        let out = adm.drain_outbox();
        assert_eq!(out.len(), 1);
        assert!(adm.policy().has_user(9));
        for m in out {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }
        assert!(s1.policy().has_user(9));
        assert!(s2.policy().has_user(9));

        // Delegations themselves cannot be delegated.
        assert!(matches!(s1.propose_admin(AdminOp::Delegate(2)), Err(CoreError::Protocol(_))));

        // Revocation of the delegation propagates; stale proposals are
        // refused at the administrator.
        let stale = s1.propose_admin(AdminOp::AddUser(10)).unwrap();
        let r = adm.admin_generate(AdminOp::RevokeDelegation(1)).unwrap();
        adm.receive(Message::Proposal(stale.clone())).unwrap();
        assert!(adm.drain_outbox().is_empty());
        assert_eq!(adm.rejected_proposals(), &[stale]);
        s1.receive(Message::Admin(r)).unwrap();
        assert!(matches!(
            s1.propose_admin(AdminOp::AddUser(11)),
            Err(CoreError::NotAdministrator { .. })
        ));
    }

    #[test]
    fn proposals_are_ignored_by_non_admin_sites() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let d = adm.admin_generate(AdminOp::Delegate(1)).unwrap();
        s1.receive(Message::Admin(d)).unwrap();
        let p = s1.propose_admin(AdminOp::AddUser(9)).unwrap();
        s2.receive(Message::Proposal(p)).unwrap();
        assert!(s2.drain_outbox().is_empty());
        assert!(!s2.policy().has_user(9));
    }

    #[test]
    fn duplicate_messages_do_not_linger_in_queues() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        // Two copies delivered back to back: the second must not stay
        // queued once the first is processed.
        s2.receive(Message::Coop(q.clone())).unwrap();
        s2.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(s2.queued(), 0);
        // Same for a duplicate queued *before* its original is ready:
        // deliver a dependent request twice, then the dependency.
        let q2 = s1.generate(Op::up(1, 'x', 'z')).unwrap();
        let mut s3 = adm.rejoin_as(3);
        s3.receive(Message::Coop(q2.clone())).unwrap();
        s3.receive(Message::Coop(q2)).unwrap();
        assert_eq!(s3.queued(), 1, "the duplicate is rejected at the queue door");
        s3.receive(Message::Coop(q)).unwrap();
        assert_eq!(s3.queued(), 0, "original processed, duplicate dropped");
        assert_eq!(s3.document().to_string(), "zabc");
        // Administrative duplicates too.
        let r = adm.admin_generate(AdminOp::AddUser(9)).unwrap();
        s2.receive(Message::Admin(r.clone())).unwrap();
        s2.receive(Message::Admin(r)).unwrap();
        assert_eq!(s2.queued(), 0);
    }

    #[test]
    fn heartbeats_drive_auto_compaction() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q.clone())).unwrap();
        s2.receive(Message::Coop(q)).unwrap();
        for m in adm.drain_outbox() {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }
        // Before hearing from everyone, nothing compacts.
        assert_eq!(s1.auto_compact(), 0);
        let hb_adm = adm.make_heartbeat();
        let hb_s2 = s2.make_heartbeat();
        s1.receive(hb_adm).unwrap();
        assert_eq!(s1.auto_compact(), 0, "still missing s2's heartbeat");
        s1.receive(hb_s2).unwrap();
        assert_eq!(s1.auto_compact(), 1);
        assert_eq!(s1.engine().log().len(), 0);
        // Stale duplicate heartbeats are merged, not regressed.
        let hb_old = Message::Heartbeat { from: 0, clock: Clock::new() };
        s1.receive(hb_old).unwrap();
        assert_eq!(s1.peer_clocks()[&0].get(1), 1);
    }

    #[test]
    fn set_group_via_admin_request() {
        let (mut adm, mut s1, _) = group("abc");
        let r = adm
            .admin_generate(AdminOp::SetGroup {
                name: "editors".into(),
                members: [1, 2].into_iter().collect(),
            })
            .unwrap();
        s1.receive(Message::Admin(r)).unwrap();
        assert_eq!(s1.policy().groups()["editors"].len(), 2);
    }

    type S = Site<Char>;

    fn doc(s: &str) -> CharDocument {
        CharDocument::from_str(s)
    }

    fn group(initial: &str) -> (S, S, S) {
        let p = Policy::permissive([0, 1, 2]);
        (
            Site::new_admin(0, doc(initial), p.clone()),
            Site::new_user(1, 0, doc(initial), p.clone()),
            Site::new_user(2, 0, doc(initial), p),
        )
    }

    #[test]
    fn replica_digest_agrees_across_converged_sites() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let q1 = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q1.clone())).unwrap();
        s2.receive(Message::Coop(q1)).unwrap();
        // Mid-flight: s2 has not seen the validation yet, so the flag
        // tables (and hence the replica digests) disagree.
        let validations = adm.drain_outbox();
        assert!(!validations.is_empty());
        assert_ne!(adm.replica_digest(), s2.replica_digest());
        for m in validations {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }
        // Converged: the *replicated* state digests collide across all
        // three sites even though their behavioral digests cannot (each
        // hashes its own identity, outbox and diagnostics).
        assert_eq!(adm.replica_digest(), s1.replica_digest());
        assert_eq!(s1.replica_digest(), s2.replica_digest());
        assert_ne!(s1.state_digest(), s2.state_digest());
    }

    #[test]
    fn duplicate_before_original_is_processed_enqueues_once() {
        let (mut adm, mut s1, mut s2) = group("abc");
        // s1 issues two causally chained edits; s2 only ever sees the
        // *second*, which is therefore not ready and must sit queued.
        let q1 = s1.generate(Op::ins(1, 'x')).unwrap();
        let q2 = s1.generate(Op::ins(1, 'y')).unwrap();
        s2.receive(Message::Coop(q2.clone())).unwrap();
        assert_eq!(s2.queued(), 1);
        // The network replays the same message back-to-back: the duplicate
        // must not be enqueued a second time.
        s2.receive(Message::Coop(q2)).unwrap();
        assert_eq!(s2.queued(), 1, "duplicate of a queued coop request stacked up");
        // Same story for administrative requests: version 2 cannot apply
        // before version 1 arrives. (The revocations target user 2, who
        // edited nothing, so no retroactive undo disturbs the document.)
        let r1 = adm.admin_generate(revoke(Right::Insert, 2)).unwrap();
        let r2 = adm.admin_generate(revoke(Right::Delete, 2)).unwrap();
        assert_eq!(r2.version, 2);
        s2.receive(Message::Admin(r2.clone())).unwrap();
        s2.receive(Message::Admin(r2)).unwrap();
        assert_eq!(s2.queued(), 2, "duplicate of a queued admin request stacked up");
        // Delivering the missing predecessors unblocks everything exactly
        // once.
        s2.receive(Message::Coop(q1)).unwrap();
        s2.receive(Message::Admin(r1)).unwrap();
        assert_eq!(s2.queued(), 0);
        assert_eq!(s2.document().to_string(), "yxabc");
        assert_eq!(s2.version(), 2);
    }

    fn revoke(right: Right, user: UserId) -> AdminOp {
        AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(user),
                DocObject::Document,
                [right],
                Sign::Minus,
            ),
        }
    }

    #[test]
    fn local_generation_checks_policy() {
        let (_, mut s1, _) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        assert_eq!(s1.flag_of(q.ot.id), Some(Flag::Tentative));
        assert_eq!(q.v, 0);
        assert_eq!(s1.document().to_string(), "xabc");
    }

    #[test]
    fn local_generation_denied_without_right() {
        let mut p = Policy::new();
        p.add_user(1);
        let mut s1: S = Site::new_user(1, 0, doc("abc"), p);
        let err = s1.generate(Op::ins(1, 'x')).unwrap_err();
        assert!(matches!(err, CoreError::AccessDenied { user: 1, .. }));
        assert_eq!(s1.document().to_string(), "abc");
    }

    #[test]
    fn admin_edits_bypass_check_and_are_valid() {
        let mut p = Policy::new();
        p.add_user(0);
        let mut adm: S = Site::new_admin(0, doc("abc"), p);
        let q = adm.generate(Op::ins(1, 'x')).unwrap();
        assert_eq!(adm.flag_of(q.ot.id), Some(Flag::Valid));
    }

    #[test]
    fn admin_validates_received_requests() {
        let (mut adm, mut s1, _) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(adm.flag_of(q.ot.id), Some(Flag::Valid));
        let out = adm.drain_outbox();
        assert_eq!(out.len(), 1);
        match &out[0] {
            Message::Admin(r) => {
                assert!(matches!(r.op, AdminOp::Validate { site: 1, seq: 1 }));
                assert_eq!(r.version, 1);
            }
            _ => panic!("expected validation"),
        }
        assert_eq!(adm.version(), 1);
    }

    #[test]
    fn validation_promotes_tentative_to_valid() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q.clone())).unwrap();
        let validation = adm.drain_outbox();

        s2.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(s2.flag_of(q.ot.id), Some(Flag::Tentative));
        for m in validation.clone() {
            s2.receive(m).unwrap();
        }
        assert_eq!(s2.flag_of(q.ot.id), Some(Flag::Valid));

        // The issuer learns validity too.
        for m in validation {
            s1.receive(m).unwrap();
        }
        assert_eq!(s1.flag_of(q.ot.id), Some(Flag::Valid));
    }

    #[test]
    fn validation_waits_for_its_target() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q.clone())).unwrap();
        let validation = adm.drain_outbox();

        // Validation arrives before the request: it must wait in Q.
        for m in validation {
            s2.receive(m).unwrap();
        }
        assert_eq!(s2.version(), 0);
        assert_eq!(s2.queued(), 1);
        s2.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(s2.version(), 1);
        assert_eq!(s2.queued(), 0);
        assert_eq!(s2.flag_of(q.ot.id), Some(Flag::Valid));
    }

    #[test]
    fn fig2_concurrent_revocation_undoes_tentative_insert() {
        let (mut adm, mut s1, mut s2) = group("abc");

        // adm revokes s1's insertion right; concurrently s1 inserts.
        let r = adm.admin_generate(revoke(Right::Insert, 1)).unwrap();
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        assert_eq!(s1.document().to_string(), "xabc");

        // At adm, the insert arrives after the revocation: Check_Remote
        // rejects it (Fig. 2's "Ignored").
        adm.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(adm.document().to_string(), "abc");
        assert_eq!(adm.flag_of(q.ot.id), Some(Flag::Invalid));
        assert!(adm.drain_outbox().is_empty(), "rejected requests are not validated");

        // s2 receives the insert first (accepted), then the revocation:
        // retroactive undo restores "abc".
        s2.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(s2.document().to_string(), "xabc");
        s2.receive(Message::Admin(r.clone())).unwrap();
        assert_eq!(s2.document().to_string(), "abc");
        assert_eq!(s2.flag_of(q.ot.id), Some(Flag::Invalid));
        assert_eq!(s2.undone(), &[q.ot.id]);

        // s1 receives its own revocation: undoes its tentative insert.
        s1.receive(Message::Admin(r)).unwrap();
        assert_eq!(s1.document().to_string(), "abc");

        // All three sites converge.
        assert_eq!(adm.document(), s1.document());
        assert_eq!(s1.document(), s2.document());
    }

    #[test]
    fn group_drift_does_not_undo_what_the_admin_validates() {
        // Regression: retroactive enforcement must replay Check_Remote —
        // "does a restrictive request concurrent with `q` revoke its
        // access?" — not re-check the full current policy. Otherwise
        // non-restrictive drift (here a SetGroup shrinking a group whose
        // grant shadowed an old revoke) makes the origin undo a tentative
        // operation that the administrator still grants and validates:
        // permanent flag and document divergence.
        let (mut adm, mut s1, mut s2) = group("abc");

        // v1: an old revoke of s1's insert right on a narrow range (s1
        // has nothing tentative yet, so nothing is undone anywhere).
        let r1 = adm
            .admin_generate(AdminOp::AddAuth {
                pos: 0,
                auth: Authorization::new(
                    Subject::User(1),
                    DocObject::Range { from: 1, to: 1 },
                    [Right::Insert],
                    Sign::Minus,
                ),
            })
            .unwrap();
        // v2: a group containing s1; v3: a grant to that group, inserted
        // above the revoke — shadowing it in the first-match walk.
        let r2 = adm
            .admin_generate(AdminOp::SetGroup {
                name: "eds".into(),
                members: [1].into_iter().collect(),
            })
            .unwrap();
        let r3 = adm
            .admin_generate(AdminOp::AddAuth {
                pos: 0,
                auth: Authorization::new(
                    Subject::Group("eds".into()),
                    DocObject::Document,
                    [Right::Insert],
                    Sign::Plus,
                ),
            })
            .unwrap();
        for m in [&r1, &r2, &r3] {
            s1.receive(Message::Admin(m.clone())).unwrap();
            s2.receive(Message::Admin(m.clone())).unwrap();
        }

        // s1 inserts under v3 — granted via the group grant.
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        assert_eq!(q.v, 3);
        assert_eq!(s1.document().to_string(), "xabc");

        // v4 (non-restrictive) empties the group, unshadowing the old
        // revoke. v5, restrictive but aimed at a *different* user,
        // reaches s1 before s1's own edit reaches the administrator —
        // triggering retroactive enforcement at the origin.
        let r4 = adm
            .admin_generate(AdminOp::SetGroup { name: "eds".into(), members: Default::default() })
            .unwrap();
        let r5 = adm.admin_generate(revoke(Right::Delete, 2)).unwrap();
        for m in [&r4, &r5] {
            s1.receive(Message::Admin(m.clone())).unwrap();
            s2.receive(Message::Admin(m.clone())).unwrap();
        }

        // No restrictive request concurrent with q covers its access, so
        // the insert must stay tentative. (The buggy full-policy re-check
        // found the unshadowed v1 revoke and undid it here — and only
        // here, since every receiver decides via Check_Remote.)
        assert_eq!(s1.flag_of(q.ot.id), Some(Flag::Tentative));
        assert_eq!(s1.document().to_string(), "xabc");
        assert!(s1.undone().is_empty());

        // The administrator receives the edit, grants it by the same
        // decision, and validates it.
        adm.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(adm.flag_of(q.ot.id), Some(Flag::Valid));
        let validations = adm.drain_outbox();
        assert_eq!(validations.len(), 1);
        s2.receive(Message::Coop(q.clone())).unwrap();
        for m in validations {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }

        // Everyone settles on the same verdict and the same document.
        for site in [&adm, &s1, &s2] {
            assert_eq!(site.flag_of(q.ot.id), Some(Flag::Valid));
            assert_eq!(site.document().to_string(), "xabc");
        }
        assert_eq!(adm.replica_digest(), s1.replica_digest());
        assert_eq!(adm.replica_digest(), s2.replica_digest());
    }

    #[test]
    fn revocation_does_not_undo_validated_requests() {
        let (mut adm, mut s1, _) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q)).unwrap();
        let validation = adm.drain_outbox();
        for m in validation {
            s1.receive(m).unwrap();
        }
        // Now revoke: the validated insert must survive.
        let r = adm.admin_generate(revoke(Right::Insert, 1)).unwrap();
        s1.receive(Message::Admin(r)).unwrap();
        assert_eq!(s1.document().to_string(), "xabc");
        assert_eq!(adm.document().to_string(), "xabc");
        // But new inserts are now denied locally.
        assert!(s1.generate(Op::ins(1, 'y')).is_err());
    }

    #[test]
    fn coop_request_waits_for_policy_version() {
        let (mut adm, _, mut s2) = group("abc");
        // adm makes two administrative changes, then edits.
        let r1 = adm.admin_generate(AdminOp::AddUser(9)).unwrap();
        let q = adm.generate(Op::ins(1, 'z')).unwrap();
        assert_eq!(q.v, 1);
        // s2 receives the edit first: its v (=1) is ahead of s2's policy
        // version (0), so it must wait.
        s2.receive(Message::Coop(q)).unwrap();
        assert_eq!(s2.document().to_string(), "abc");
        assert_eq!(s2.queued(), 1);
        s2.receive(Message::Admin(r1)).unwrap();
        assert_eq!(s2.document().to_string(), "zabc");
        assert_eq!(s2.queued(), 0);
    }

    #[test]
    fn non_admin_cannot_administrate() {
        let (_, mut s1, _) = group("abc");
        assert!(matches!(
            s1.admin_generate(AdminOp::AddUser(9)),
            Err(CoreError::NotAdministrator { user: 1 })
        ));
    }

    #[test]
    fn admin_requests_apply_in_version_order() {
        let (mut adm, mut s1, _) = group("abc");
        let r1 = adm.admin_generate(AdminOp::AddUser(8)).unwrap();
        let r2 = adm.admin_generate(AdminOp::AddUser(9)).unwrap();
        // Deliver out of order: r2 waits for r1.
        s1.receive(Message::Admin(r2)).unwrap();
        assert_eq!(s1.version(), 0);
        s1.receive(Message::Admin(r1)).unwrap();
        assert_eq!(s1.version(), 2);
        assert!(s1.policy().has_user(8));
        assert!(s1.policy().has_user(9));
    }

    #[test]
    fn undo_cascades_mark_dependents_invalid() {
        let (mut adm, mut s1, _) = group("abc");
        let q_ins = s1.generate(Op::ins(1, 'x')).unwrap();
        let q_up = s1.generate(Op::up(1, 'x', 'z')).unwrap();
        assert_eq!(s1.document().to_string(), "zabc");
        // Revoke insertion: the tentative insert is undone, dragging the
        // (also tentative) update with it.
        let r = adm.admin_generate(revoke(Right::Insert, 1)).unwrap();
        s1.receive(Message::Admin(r)).unwrap();
        assert_eq!(s1.document().to_string(), "abc");
        assert_eq!(s1.flag_of(q_ins.ot.id), Some(Flag::Invalid));
        assert_eq!(s1.flag_of(q_up.ot.id), Some(Flag::Invalid));
    }

    #[test]
    fn duplicate_coop_message_is_ignored() {
        let (mut adm, mut s1, _) = group("abc");
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(q.clone())).unwrap();
        adm.drain_outbox();
        adm.receive(Message::Coop(q)).unwrap();
        assert_eq!(adm.document().to_string(), "xabc");
        assert!(adm.drain_outbox().is_empty());
    }

    #[test]
    fn stale_admin_message_is_ignored() {
        let (mut adm, mut s1, _) = group("abc");
        let r = adm.admin_generate(AdminOp::AddUser(9)).unwrap();
        s1.receive(Message::Admin(r.clone())).unwrap();
        assert_eq!(s1.version(), 1);
        s1.receive(Message::Admin(r)).unwrap();
        assert_eq!(s1.version(), 1);
        assert_eq!(s1.queued(), 0);
    }

    #[test]
    fn invalid_request_stays_invalid_after_validation_of_others() {
        let (mut adm, mut s1, mut s2) = group("abc");
        let r = adm.admin_generate(revoke(Right::Delete, 2)).unwrap();
        // s2 deletes concurrently with the revocation.
        let q = s2.generate(Op::del(1, 'a')).unwrap();
        // s1 applies the revocation first, then receives the delete.
        s1.receive(Message::Admin(r)).unwrap();
        s1.receive(Message::Coop(q.clone())).unwrap();
        assert_eq!(s1.flag_of(q.ot.id), Some(Flag::Invalid));
        assert_eq!(s1.document().to_string(), "abc");
        assert_eq!(s1.denials(), &[q.ot.id]);
    }
}

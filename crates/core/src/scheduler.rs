//! The causal-readiness scheduler behind [`crate::Site`]'s reception
//! queues `F` and `Q`.
//!
//! Algorithm 1 is specified as a fixpoint *scan*: after every delivery,
//! re-test every queued request for causal readiness. That is O(|F|+|Q|)
//! per delivery — quadratic over a session. This scheduler keeps the same
//! observable behaviour (same processing order, same `queued()` counts —
//! pinned by the `scheduler_matches_scan_drain` differential proptest)
//! while making each delivery wake exactly the requests it unblocks:
//!
//! * **ready lane** — cooperative requests whose OT context and policy
//!   version are satisfied, ordered by arrival (the scan picks the
//!   earliest-arrived ready request, because queue removal preserves
//!   relative order); plus at most one administrative request (versions
//!   are totally ordered, so only `version + 1` can ever be ready);
//! * **version parking** — requests waiting for the local policy version
//!   to reach `v` are parked under key `v` in a `BTreeMap`; every version
//!   bump drains the `..=version` prefix;
//! * **clock parking** — requests waiting for a missing causal
//!   predecessor are parked under the exact [`RequestId`] whose
//!   integration unblocks them: the immediate site-FIFO predecessor
//!   (`seq - 1` from their own site), or the *last* request needed from
//!   the first lagging context site (per-site integration is sequential,
//!   so that arrival is precisely when the component catches up).
//!   Readiness is monotone — the policy version and the vector clock only
//!   grow — so one blocker at a time suffices: integrating it
//!   re-classifies the waiter, which becomes ready or parks on the next
//!   blocker, with at most one re-park per distinct lagging site;
//! * **membership sets** — queued cooperative ids and administrative
//!   versions, replacing the queue scans the duplicate guard at the
//!   reception door used to do.
//!
//! The scheduler only stores and wakes; *classification* (which lane a
//! request belongs to) needs the policy version and the OT clock, so it
//! stays in [`crate::Site`].

use crate::request::CoopRequest;
use dce_ot::RequestId;
use dce_policy::{AdminRequest, PolicyVersion};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Where a classified message belongs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Process at the next drain step.
    Ready,
    /// Park until the local policy version reaches the key.
    WaitVersion(PolicyVersion),
    /// Park until the request with this id has been integrated.
    WaitClock(RequestId),
}

/// A parked message. Cooperative requests carry their arrival stamp so a
/// woken request keeps its place in the ready order.
#[derive(Debug, Clone)]
pub(crate) enum Pending<E> {
    /// A cooperative request and its arrival stamp.
    Coop {
        /// Monotonic reception stamp (ready-lane ordering key).
        arrival: u64,
        /// The parked request.
        q: CoopRequest<E>,
    },
    /// An administrative request (ordered by its version, not arrival).
    Admin(AdminRequest),
}

#[derive(Debug, Clone)]
pub(crate) struct Scheduler<E> {
    next_arrival: u64,
    ready_coop: BTreeMap<u64, CoopRequest<E>>,
    ready_admin: Option<AdminRequest>,
    wait_version: BTreeMap<PolicyVersion, Vec<Pending<E>>>,
    wait_clock: HashMap<RequestId, Vec<Pending<E>>>,
    held_coop: HashSet<RequestId>,
    held_admin: BTreeSet<PolicyVersion>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            next_arrival: 0,
            ready_coop: BTreeMap::new(),
            ready_admin: None,
            wait_version: BTreeMap::new(),
            wait_clock: HashMap::new(),
            held_coop: HashSet::new(),
            held_admin: BTreeSet::new(),
        }
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// `true` when a cooperative request with this id is queued (ready or
    /// parked) — the reception-door duplicate guard.
    pub fn holds_coop(&self, id: RequestId) -> bool {
        self.held_coop.contains(&id)
    }

    /// `true` when an administrative request with this version is queued.
    pub fn holds_admin(&self, version: PolicyVersion) -> bool {
        self.held_admin.contains(&version)
    }

    /// Number of queued messages (ready and parked).
    pub fn len(&self) -> usize {
        self.held_coop.len() + self.held_admin.len()
    }

    /// Number of queued messages that are causally ready to process.
    pub fn ready_len(&self) -> usize {
        self.ready_coop.len() + usize::from(self.ready_admin.is_some())
    }

    /// Number of queued messages parked on a missing version or request.
    pub fn parked_len(&self) -> usize {
        self.len() - self.ready_len()
    }

    /// Admits a newly received cooperative request into `slot`.
    pub fn admit_coop(&mut self, q: CoopRequest<E>, slot: Slot) {
        self.held_coop.insert(q.ot.id);
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.park(Pending::Coop { arrival, q }, slot);
    }

    /// Admits a newly received administrative request into `slot`.
    pub fn admit_admin(&mut self, r: AdminRequest, slot: Slot) {
        self.held_admin.insert(r.version);
        self.park(Pending::Admin(r), slot);
    }

    /// Files a (new or re-classified) message under `slot`, keeping its
    /// arrival stamp.
    pub fn park(&mut self, pending: Pending<E>, slot: Slot) {
        match slot {
            Slot::Ready => match pending {
                Pending::Coop { arrival, q } => {
                    self.ready_coop.insert(arrival, q);
                }
                Pending::Admin(r) => {
                    debug_assert!(
                        self.ready_admin.is_none(),
                        "two administrative requests ready at once breaks the total order"
                    );
                    self.ready_admin = Some(r);
                }
            },
            Slot::WaitVersion(v) => self.wait_version.entry(v).or_default().push(pending),
            Slot::WaitClock(id) => self.wait_clock.entry(id).or_default().push(pending),
        }
    }

    /// Takes the ready administrative request, if any.
    pub fn pop_ready_admin(&mut self) -> Option<AdminRequest> {
        let r = self.ready_admin.take()?;
        self.held_admin.remove(&r.version);
        Some(r)
    }

    /// Takes the earliest-arrived ready cooperative request, if any.
    pub fn pop_ready_coop(&mut self) -> Option<CoopRequest<E>> {
        let arrival = *self.ready_coop.keys().next()?;
        let q = self.ready_coop.remove(&arrival).expect("key just observed");
        self.held_coop.remove(&q.ot.id);
        Some(q)
    }

    /// Unparks every message waiting for a policy version `<= reached`.
    /// The caller re-classifies each one.
    pub fn take_version_waiters(&mut self, reached: PolicyVersion) -> Vec<Pending<E>> {
        let mut woken = Vec::new();
        while let Some((&v, _)) = self.wait_version.iter().next() {
            if v > reached {
                break;
            }
            woken.extend(self.wait_version.remove(&v).expect("key just observed"));
        }
        woken
    }

    /// Unparks every message waiting for `id` to be integrated. The caller
    /// re-classifies each one.
    pub fn take_clock_waiters(&mut self, id: RequestId) -> Vec<Pending<E>> {
        self.wait_clock.remove(&id).unwrap_or_default()
    }

    /// Forgets a queued cooperative id (the request became a duplicate of
    /// processed history while parked).
    pub fn release_coop(&mut self, id: RequestId) {
        self.held_coop.remove(&id);
    }

    /// Forgets a queued administrative version (overtaken by the local
    /// version counter while parked).
    pub fn release_admin(&mut self, version: PolicyVersion) {
        self.held_admin.remove(&version);
    }

    /// Feeds the scheduler's queue contents into `h`, in behavioral order.
    /// Absolute arrival stamps (and `next_arrival`) are excluded — they
    /// count admissions along the path taken — but their *relative ranks*
    /// are hashed: a woken request keeps its stamp as its ready-lane
    /// ordering key, so the relative arrival order of queued cooperative
    /// requests (across all lanes) is behavioral. Two runs joining on the
    /// same pending set in the same relative order collide in state-space
    /// dedupe; runs that differ only in absolute stamp values do too.
    pub fn digest_into<H: std::hash::Hasher>(&self, h: &mut H)
    where
        E: std::hash::Hash,
    {
        use std::hash::Hash;
        let mut stamps: Vec<u64> = self.ready_coop.keys().copied().collect();
        for pendings in self.wait_version.values().chain(self.wait_clock.values()) {
            for p in pendings {
                if let Pending::Coop { arrival, .. } = p {
                    stamps.push(*arrival);
                }
            }
        }
        stamps.sort_unstable();
        let rank = |a: u64| stamps.binary_search(&a).expect("queued stamp is present") as u64;
        let hash_pending = |p: &Pending<E>, h: &mut H| match p {
            Pending::Coop { arrival, q } => {
                0u8.hash(h);
                rank(*arrival).hash(h);
                q.hash(h);
            }
            Pending::Admin(r) => {
                1u8.hash(h);
                r.hash(h);
            }
        };
        self.ready_coop.len().hash(h);
        for (arrival, q) in &self.ready_coop {
            rank(*arrival).hash(h);
            q.hash(h);
        }
        self.ready_admin.hash(h);
        self.wait_version.len().hash(h);
        for (v, pendings) in &self.wait_version {
            v.hash(h);
            pendings.len().hash(h);
            for p in pendings {
                hash_pending(p, h);
            }
        }
        let mut clock_keys: Vec<RequestId> = self.wait_clock.keys().copied().collect();
        clock_keys.sort_unstable();
        clock_keys.len().hash(h);
        for id in clock_keys {
            id.hash(h);
            let pendings = &self.wait_clock[&id];
            pendings.len().hash(h);
            for p in pendings {
                hash_pending(p, h);
            }
        }
        let mut held: Vec<RequestId> = self.held_coop.iter().copied().collect();
        held.sort_unstable();
        held.hash(h);
        self.held_admin.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_document::Char;

    fn admin(version: PolicyVersion) -> AdminRequest {
        AdminRequest { admin: 0, version, op: dce_policy::AdminOp::AddUser(9) }
    }

    #[test]
    fn version_waiters_drain_in_prefix_order() {
        let mut s: Scheduler<Char> = Scheduler::new();
        s.admit_admin(admin(3), Slot::WaitVersion(2));
        s.admit_admin(admin(5), Slot::WaitVersion(4));
        assert_eq!(s.len(), 2);
        assert!(s.holds_admin(3));
        let woken = s.take_version_waiters(2);
        assert_eq!(woken.len(), 1);
        assert!(matches!(&woken[0], Pending::Admin(r) if r.version == 3));
        // Waking does not release: the message is still queued until the
        // caller re-parks or releases it.
        assert_eq!(s.len(), 2);
        assert!(s.take_version_waiters(3).is_empty());
        assert_eq!(s.take_version_waiters(4).len(), 1);
    }

    #[test]
    fn ready_admin_is_single_slot() {
        let mut s: Scheduler<Char> = Scheduler::new();
        s.admit_admin(admin(1), Slot::Ready);
        assert_eq!(s.pop_ready_admin().map(|r| r.version), Some(1));
        assert_eq!(s.len(), 0);
        assert!(s.pop_ready_admin().is_none());
    }

    #[test]
    fn clock_waiters_key_on_exact_id() {
        let mut s: Scheduler<Char> = Scheduler::new();
        let dep = RequestId::new(2, 7);
        s.admit_admin(admin(1), Slot::WaitClock(dep));
        assert!(s.take_clock_waiters(RequestId::new(2, 6)).is_empty());
        assert_eq!(s.take_clock_waiters(dep).len(), 1);
    }
}

//! Cooperative requests, flags and wire messages (paper §5.1).

use dce_ot::engine::BroadcastRequest;
use dce_ot::ids::Clock;
use dce_policy::{AdminOp, AdminRequest, PolicyVersion, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The lifecycle flag `q.f` of a cooperative request (paper §5.1):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flag {
    /// Locally accepted, awaiting the administrator's validation. Only
    /// tentative requests can be retroactively undone.
    Tentative,
    /// Confirmed — issued by the administrator, or validated by a
    /// `Validate` administrative request.
    Valid,
    /// Rejected by `Check_Remote`: stored in the log with no document
    /// effect (like `q3*` in the paper's Fig. 5).
    Invalid,
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flag::Tentative => "tentative",
            Flag::Valid => "valid",
            Flag::Invalid => "invalid",
        })
    }
}

/// A cooperative request on the wire: the tuple `(c, r, a, o, v, f)` of
/// §5.1 — identity, dependency and operation live in the embedded OT
/// [`BroadcastRequest`]; `v` is the policy version the issuing site checked
/// the operation against; the initial flag is implied by the issuer (valid
/// for the administrator, tentative otherwise).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoopRequest<E> {
    /// The OT-layer request (identity `c`+`r`, dependency `a`, operation
    /// `o`, causal context).
    pub ot: BroadcastRequest<E>,
    /// Policy version at generation (`q.v`).
    pub v: PolicyVersion,
}

impl<E> CoopRequest<E> {
    /// The issuing user (= issuing site, one user per site).
    pub fn user(&self) -> UserId {
        self.ot.id.site
    }
}

/// A delegated administrative proposal: a user holding a delegation asks
/// the administrator to issue `op` on their behalf. The administrator
/// re-checks the delegation and sequences the operation, preserving the
/// total order on administrative requests (§7 future work, realised).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdminProposal {
    /// The proposing user.
    pub from: UserId,
    /// The proposed administrative operation.
    pub op: AdminOp,
}

/// A message on the group channel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Message<E> {
    /// A cooperative request (document edit).
    Coop(CoopRequest<E>),
    /// An administrative request (policy mutation or validation).
    Admin(AdminRequest),
    /// A delegated administrative proposal, addressed to the administrator
    /// (other sites ignore it).
    Proposal(AdminProposal),
    /// A gossip heartbeat: the sender's causal clock. Drives the
    /// garbage-collection stability horizon (every site learns how far the
    /// whole group has acknowledged, and compacts the settled log prefix).
    Heartbeat {
        /// The reporting user.
        from: UserId,
        /// Their clock at send time.
        clock: Clock,
    },
}

impl<E> Message<E> {
    /// Short human-readable tag for tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Coop(_) => "coop",
            Message::Admin(_) => "admin",
            Message::Proposal(_) => "proposal",
            Message::Heartbeat { .. } => "heartbeat",
        }
    }

    /// The observability coordinates of the cooperative request this
    /// message carries, if it carries one. Lets the transport layer
    /// correlate retransmissions (and other per-packet events) with the
    /// protocol-level spans `dce-trace` builds.
    pub fn coop_req_id(&self) -> Option<dce_obs::ReqId> {
        match self {
            Message::Coop(q) => Some(dce_obs::ReqId::new(q.ot.id.site, q.ot.id.seq)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_displays() {
        assert_eq!(Flag::Tentative.to_string(), "tentative");
        assert_eq!(Flag::Valid.to_string(), "valid");
        assert_eq!(Flag::Invalid.to_string(), "invalid");
    }
}

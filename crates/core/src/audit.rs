//! Security auditing: what happened to every request at this site.
//!
//! An access-control system is only administrable if the administrator can
//! answer "who tried what, and what did we do about it?". This module
//! derives that answer from the state a [`Site`] already
//! keeps — the cooperative log, the flags, and the denial/undo records —
//! without any additional bookkeeping on the hot path.

use crate::request::Flag;
use crate::site::Site;
use dce_document::{Element, OpKind};
use dce_ot::{EngineMetrics, RequestId};
use dce_policy::UserId;
use std::fmt;

/// The audited fate of one cooperative request at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Request identity.
    pub id: RequestId,
    /// The user who issued it.
    pub user: UserId,
    /// The kind of operation it carried (from its broadcast form).
    pub kind: OpKind,
    /// Its current flag at this site.
    pub flag: Flag,
    /// `true` when the request currently has no document effect here.
    pub inert: bool,
    /// `true` when this site rejected it on arrival (`Check_Remote`).
    pub denied_here: bool,
    /// `true` when this site retroactively undid it.
    pub undone_here: bool,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by s{}: {} — {}", self.id, self.user, self.kind, self.flag)?;
        if self.denied_here {
            write!(f, " (denied on arrival)")?;
        }
        if self.undone_here {
            write!(f, " (retroactively undone)")?;
        }
        Ok(())
    }
}

/// Aggregate counters for one site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteMetrics {
    /// Requests recorded in the cooperative log (live + inert), plus any
    /// compacted away.
    pub total_requests: usize,
    /// Requests currently valid.
    pub valid: usize,
    /// Requests still awaiting validation.
    pub tentative: usize,
    /// Requests invalid (rejected or undone).
    pub invalid: usize,
    /// Requests this site rejected on arrival.
    pub denied_here: usize,
    /// Requests this site retroactively undid.
    pub undone_here: usize,
    /// Log entries reclaimed by compaction.
    pub compacted: usize,
    /// OT-layer work counters.
    pub engine: EngineMetrics,
}

/// Builds the audit trail of `site`, one record per request still in the
/// log, in log order.
pub fn audit<E: Element>(site: &Site<E>) -> Vec<AuditRecord> {
    site.engine()
        .log()
        .iter()
        .map(|entry| AuditRecord {
            id: entry.id,
            user: entry.id.site,
            kind: entry.base.kind(),
            flag: site.flag_of(entry.id).unwrap_or(Flag::Tentative),
            inert: entry.inert,
            denied_here: site.denials().contains(&entry.id),
            undone_here: site.undone().contains(&entry.id),
        })
        .collect()
}

/// Aggregates `site`'s counters.
pub fn metrics<E: Element>(site: &Site<E>) -> SiteMetrics {
    let records = audit(site);
    SiteMetrics {
        total_requests: records.len() + site.engine().pruned_count(),
        valid: records.iter().filter(|r| r.flag == Flag::Valid).count(),
        tentative: records.iter().filter(|r| r.flag == Flag::Tentative).count(),
        invalid: records.iter().filter(|r| r.flag == Flag::Invalid).count(),
        denied_here: site.denials().len(),
        undone_here: site.undone().len(),
        compacted: site.engine().pruned_count(),
        engine: site.engine().metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Message;
    use dce_document::{Char, CharDocument, Op};
    use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject};

    fn revoke_insert(user: u32) -> AdminOp {
        AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(user),
                DocObject::Document,
                [Right::Insert],
                Sign::Minus,
            ),
        }
    }

    #[test]
    fn audit_reports_the_fate_of_every_request() {
        let p = Policy::permissive([0, 1, 2]);
        let d0 = CharDocument::from_str("abc");
        let mut adm: Site<Char> = Site::new_admin(0, d0.clone(), p.clone());
        let mut s1: Site<Char> = Site::new_user(1, 0, d0.clone(), p.clone());
        let mut s2: Site<Char> = Site::new_user(2, 0, d0, p);

        // A legal, validated edit.
        let good = s1.generate(Op::ins(1, 'x')).unwrap();
        adm.receive(Message::Coop(good.clone())).unwrap();
        let validations = adm.drain_outbox();
        for m in validations {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }
        s2.receive(Message::Coop(good.clone())).unwrap();

        // An edit rejected at s2 (concurrent revocation ordered first).
        let r = adm.admin_generate(revoke_insert(1)).unwrap();
        let bad = s1.generate(Op::ins(1, 'y')).unwrap();
        s2.receive(Message::Admin(r.clone())).unwrap();
        s2.receive(Message::Coop(bad.clone())).unwrap();
        // …and undone at its own site.
        s1.receive(Message::Admin(r)).unwrap();

        let at_s2 = audit(&s2);
        assert_eq!(at_s2.len(), 2);
        let rec_good = at_s2.iter().find(|r| r.id == good.ot.id).unwrap();
        assert_eq!(rec_good.flag, Flag::Valid);
        assert!(!rec_good.inert);
        assert!(!rec_good.denied_here);
        let rec_bad = at_s2.iter().find(|r| r.id == bad.ot.id).unwrap();
        assert_eq!(rec_bad.flag, Flag::Invalid);
        assert!(rec_bad.inert);
        assert!(rec_bad.denied_here);
        assert!(!rec_bad.undone_here);
        assert!(rec_bad.to_string().contains("denied on arrival"));

        let at_s1 = audit(&s1);
        let rec_bad = at_s1.iter().find(|r| r.id == bad.ot.id).unwrap();
        assert!(rec_bad.undone_here);
        assert!(rec_bad.to_string().contains("retroactively undone"));

        let m = metrics(&s2);
        assert_eq!(m.total_requests, 2);
        assert_eq!(m.valid, 1);
        assert_eq!(m.invalid, 1);
        assert_eq!(m.denied_here, 1);
        assert_eq!(m.engine.integrated, 2);
    }

    #[test]
    fn metrics_track_compaction() {
        use crate::gc;
        let p = Policy::permissive([0, 1]);
        let mut adm: Site<Char> = Site::new_admin(0, CharDocument::new(), p.clone());
        let mut s1: Site<Char> = Site::new_user(1, 0, CharDocument::new(), p);
        let q = s1.generate(Op::ins(1, 'a')).unwrap();
        adm.receive(Message::Coop(q)).unwrap();
        for m in adm.drain_outbox() {
            s1.receive(m).unwrap();
        }
        let horizon = gc::stability_horizon([s1.engine().clock(), adm.engine().clock()]);
        assert_eq!(gc::compact(&mut s1, &horizon), 1);
        let m = metrics(&s1);
        assert_eq!(m.compacted, 1);
        assert_eq!(m.total_requests, 1);
        assert_eq!(m.valid, 0, "compacted entries leave the audit window");
    }
}

//! Multi-document sharded engine: thousands of documents per process.
//!
//! The paper scopes every mechanism — policy copy, administrative log,
//! OT log `H`, queues `F`/`Q` — to *one* document. A deployment hosts
//! many. [`Engine`] keeps that per-document math intact by owning one
//! [`Site`] **shard** per [`DocumentId`] and routing everything by
//! document:
//!
//! * the route table is a copy-on-write `Arc`-shared map: readers take a
//!   read lock only long enough to clone the `Arc`, so routing never
//!   contends with shard creation;
//! * each shard pairs its `Site` (behind its own mutex — documents never
//!   block each other) with a [`PolicyCell`] snapshot of the shard's
//!   policy, refreshed after every mutation that bumped it;
//! * [`Engine::check_local`] answers the hot-path admission question
//!   from the `PolicyCell` alone — no shard lock, no policy clone — so
//!   its cost is flat in the number of hosted documents;
//! * observability handles are scoped per shard via
//!   [`ObsHandle::for_doc`], so events, histograms and flight dumps name
//!   the document they belong to.
//!
//! Faults are isolated by construction: a shard's queues, flags and
//! digests live in its own `Site`, so drops or partitions affecting one
//! document cannot perturb another's replica digest (asserted by the
//! cross-shard chaos test in `tests/chaos.rs`).

use crate::error::CoreError;
use crate::request::{CoopRequest, Message};
use crate::shard::DocumentId;
use crate::site::Site;
use dce_document::{Document, Element, Op};
use dce_obs::ObsHandle;
use dce_policy::{Action, AdminOp, AdminRequest, Decision, Policy, PolicyCell, UserId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Journal hooks a durable store implements to ride along the engine's
/// protocol operations (`dce-store` is the one real implementation; the
/// trait lives here so `dce-core` stays free of I/O). The contract is
/// write-ahead for receptions and write-behind for local generations:
///
/// * [`ShardStore::journal_remote`] runs *before* the message is applied,
///   so a crash mid-apply replays it (application is deterministic —
///   including its errors — so replay converges on the same state);
/// * [`ShardStore::journal_local_coop`] / [`journal_local_admin`]
///   (`journal_local_admin`: [`ShardStore::journal_local_admin`]) run
///   *after* a successful generation, recording the visible-coordinate
///   input plus the identity the generation produced, so recovery can
///   re-execute it and assert the replay did not diverge;
/// * [`ShardStore::journal_compact`] records that the stability-horizon
///   compactor ran, so replay prunes at the same point;
/// * [`ShardStore::snapshot`] is the compaction opportunity: the store
///   may persist a full snapshot if the site is quiescent (no queued
///   messages, empty outbox) and enough records accumulated; `force`
///   marks the explicit [`Engine::auto_compact`] horizon, where servers
///   gate snapshots on group-wide delivery stability.
///
/// Every hook takes `&self`: the engine invokes them under the shard
/// lock, so a store needs interior mutability but no cross-document
/// coordination.
pub trait ShardStore<E: Element>: Send + Sync {
    /// Journals a remote message about to be applied to `doc`'s site.
    fn journal_remote(&self, doc: DocumentId, msg: &Message<E>);
    /// Journals a successful local cooperative generation: the
    /// visible-coordinate `op` that was executed and the broadcast
    /// request it produced.
    fn journal_local_coop(&self, doc: DocumentId, op: &Op<E>, q: &CoopRequest<E>);
    /// Journals a successful local administrative generation.
    fn journal_local_admin(&self, doc: DocumentId, r: &AdminRequest);
    /// Journals that [`Site::auto_compact`] ran on `doc`.
    fn journal_compact(&self, doc: DocumentId);
    /// Offers the store a chance to persist a snapshot of `doc`'s site.
    fn snapshot(&self, doc: DocumentId, site: &Site<E>, force: bool);
}

/// One document's slice of the process: the paper's per-document state
/// (`Site`) plus the lock-free-read policy snapshot.
struct Shard<E: Element> {
    site: Mutex<Site<E>>,
    policy: PolicyCell,
    /// Combined (canonical + admin) log length at which the always-on
    /// compactor fires next. Only read/written under the site lock; the
    /// atomic is for `Sync`, not for lock-free access. Trigger state is
    /// deliberately *not* part of replica state: every compaction that
    /// actually runs is journaled, so recovery replays the decisions, not
    /// the heuristic that made them.
    compact_at: std::sync::atomic::AtomicUsize,
}

type RouteMap<E> = HashMap<DocumentId, Arc<Shard<E>>>;

/// A multi-tenant engine hosting one participant's replicas for many
/// documents. See the module docs for the sharding contract.
pub struct Engine<E: Element> {
    user: UserId,
    admin_id: UserId,
    route: RwLock<Arc<RouteMap<E>>>,
    obs: ObsHandle,
    /// Durable journal hooks (none by default — engines are in-memory
    /// unless [`Engine::with_store`] attaches a store).
    store: Option<Arc<dyn ShardStore<E>>>,
    /// Log-size watermark of the always-on compactor (`None` = explicit
    /// [`Engine::auto_compact`] calls only). See [`Engine::with_compaction`].
    compact_watermark: Option<usize>,
}

impl<E: Element> Engine<E> {
    /// An engine whose shards are administrator replicas.
    pub fn new_admin(user: UserId) -> Self {
        Engine::new(user, user)
    }

    /// An engine whose shards are user replicas of `admin_id`'s group.
    pub fn new_user(user: UserId, admin_id: UserId) -> Self {
        Engine::new(user, admin_id)
    }

    fn new(user: UserId, admin_id: UserId) -> Self {
        Engine {
            user,
            admin_id,
            route: RwLock::new(Arc::new(HashMap::new())),
            obs: ObsHandle::default(),
            store: None,
            compact_watermark: None,
        }
    }

    /// Turns on the always-on stability-horizon compactor. After any
    /// protocol mutation (generate / admin_generate / receive) that
    /// leaves a shard's canonical-log-plus-admin-log length at or above
    /// the current trigger point, the engine runs [`Site::auto_compact`]
    /// under the same shard lock — provided a horizon is computable at
    /// all ([`Site::horizon_ready`]) — journaling the compaction point
    /// and forcing a snapshot opportunity when a store is attached.
    ///
    /// The trigger starts at `watermark` and, after every attempt, moves
    /// to the post-compaction length plus `watermark`: when the horizon
    /// advances normally the logs oscillate around `watermark` entries,
    /// and when a silent member pins the horizon the logs grow as they
    /// must, but each further attempt (and WAL `Compact` record) costs
    /// `watermark` new entries — the compactor can never dominate the
    /// journal it is trying to bound.
    pub fn with_compaction(mut self, watermark: usize) -> Self {
        self.compact_watermark = Some(watermark.max(1));
        self
    }

    /// Attaches a process-wide observability handle; each shard created
    /// afterwards records under its own document scope.
    pub fn with_observability(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a durable store: every subsequent
    /// [`Engine::generate`] / [`Engine::admin_generate`] /
    /// [`Engine::receive`] / [`Engine::auto_compact`] is journaled
    /// through the [`ShardStore`] hooks. Callers that reach a site
    /// directly through [`Engine::with`] bypass journaling — the escape
    /// hatch is for reads and diagnostics, not protocol mutations.
    pub fn with_store(mut self, store: Arc<dyn ShardStore<E>>) -> Self {
        self.store = Some(store);
        self
    }

    /// The participant this engine replicates for.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Whether this engine's shards are administrator replicas.
    pub fn is_admin(&self) -> bool {
        self.user == self.admin_id
    }

    // ------------------------------------------------------------------
    // Shard management (rare path: takes the route write lock).
    // ------------------------------------------------------------------

    /// Creates one document shard. Errors if the document already exists.
    pub fn create_document(
        &self,
        doc: DocumentId,
        d0: Document<E>,
        policy: Policy,
    ) -> Result<(), CoreError> {
        self.create_documents(std::iter::once((doc, d0, policy)))
    }

    /// Bulk shard creation: one route-map copy for the whole batch.
    pub fn create_documents(
        &self,
        docs: impl IntoIterator<Item = (DocumentId, Document<E>, Policy)>,
    ) -> Result<(), CoreError> {
        let mut slot = self.route.write().expect("engine route poisoned");
        let mut next = RouteMap::clone(&slot);
        for (doc, d0, policy) in docs {
            if next.contains_key(&doc) {
                return Err(CoreError::Protocol(format!("{doc} already hosted")));
            }
            let site = if self.is_admin() {
                Site::new_admin(self.user, d0, policy)
            } else {
                Site::new_user(self.user, self.admin_id, d0, policy)
            };
            next.insert(doc, self.wrap(doc, site));
        }
        *slot = Arc::new(next);
        Ok(())
    }

    /// Adopts an already-built site (e.g. restored from a snapshot) as
    /// the shard for `doc`. The site's document id and observability
    /// scope are rewritten to match.
    pub fn adopt_site(&self, doc: DocumentId, site: Site<E>) -> Result<(), CoreError> {
        let mut slot = self.route.write().expect("engine route poisoned");
        if slot.contains_key(&doc) {
            return Err(CoreError::Protocol(format!("{doc} already hosted")));
        }
        let mut next = RouteMap::clone(&slot);
        next.insert(doc, self.wrap(doc, site));
        *slot = Arc::new(next);
        Ok(())
    }

    fn wrap(&self, doc: DocumentId, mut site: Site<E>) -> Arc<Shard<E>> {
        site.set_document(doc);
        site.set_observability(self.obs.for_doc(doc.as_u64()));
        let policy = PolicyCell::from_shared(site.policy_snapshot());
        let compact_at =
            std::sync::atomic::AtomicUsize::new(self.compact_watermark.unwrap_or(usize::MAX));
        Arc::new(Shard { site: Mutex::new(site), policy, compact_at })
    }

    /// Drops a document shard; returns whether it existed.
    pub fn remove_document(&self, doc: DocumentId) -> bool {
        let mut slot = self.route.write().expect("engine route poisoned");
        if !slot.contains_key(&doc) {
            return false;
        }
        let mut next = RouteMap::clone(&slot);
        next.remove(&doc);
        *slot = Arc::new(next);
        true
    }

    // ------------------------------------------------------------------
    // Routing (hot path: read lock held only to clone the map Arc).
    // ------------------------------------------------------------------

    fn shard(&self, doc: DocumentId) -> Option<Arc<Shard<E>>> {
        let map = Arc::clone(&self.route.read().expect("engine route poisoned"));
        map.get(&doc).cloned()
    }

    /// Whether `doc` is hosted here.
    pub fn contains(&self, doc: DocumentId) -> bool {
        self.route.read().expect("engine route poisoned").contains_key(&doc)
    }

    /// Number of hosted documents.
    pub fn len(&self) -> usize {
        self.route.read().expect("engine route poisoned").len()
    }

    /// Whether no documents are hosted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All hosted document ids, ascending.
    pub fn docs(&self) -> Vec<DocumentId> {
        let map = Arc::clone(&self.route.read().expect("engine route poisoned"));
        let mut docs: Vec<DocumentId> = map.keys().copied().collect();
        docs.sort_unstable();
        docs
    }

    /// Runs `f` against `doc`'s site under that shard's lock, then
    /// refreshes the shard's policy snapshot if the mutation swapped it.
    /// `None` when the document is not hosted.
    pub fn with<R>(&self, doc: DocumentId, f: impl FnOnce(&mut Site<E>) -> R) -> Option<R> {
        self.with_shard(doc, |_, site| f(site))
    }

    fn with_shard<R>(
        &self,
        doc: DocumentId,
        f: impl FnOnce(&Shard<E>, &mut Site<E>) -> R,
    ) -> Option<R> {
        let shard = self.shard(doc)?;
        let mut site = shard.site.lock().expect("shard poisoned");
        let out = f(&shard, &mut site);
        let now = site.policy_snapshot();
        if !Arc::ptr_eq(&now, &shard.policy.load()) {
            shard.policy.store(now);
        }
        Some(out)
    }

    /// The always-on compactor's trigger check: runs after every protocol
    /// mutation when [`Engine::with_compaction`] armed it. Fires only when
    /// the combined log length crossed the shard's trigger point *and* a
    /// stability horizon is computable — [`Site::auto_compact`] without
    /// one is a pure no-op that would still cost a WAL record.
    fn maybe_compact(&self, doc: DocumentId, shard: &Shard<E>, site: &mut Site<E>) {
        use std::sync::atomic::Ordering;
        use std::time::Instant;
        let Some(wm) = self.compact_watermark else { return };
        let combined = site.engine().log().len() + site.admin_log().len();
        if combined < shard.compact_at.load(Ordering::Relaxed) || !site.horizon_ready() {
            return;
        }
        let t = Instant::now();
        site.auto_compact();
        let after = site.engine().log().len() + site.admin_log().len();
        shard.compact_at.store(after + wm, Ordering::Relaxed);
        let obs = self.obs.for_doc(doc.0);
        obs.add_counter("engine.auto_compactions", 1);
        obs.observe_hist("engine.compact_ns", t.elapsed().as_nanos() as u64);
        obs.observe_hist("engine.compact_log_before", combined as u64);
        obs.observe_hist("engine.compact_log_after", after as u64);
        if let Some(store) = &self.store {
            store.journal_compact(doc);
            store.snapshot(doc, site, true);
        }
    }

    // ------------------------------------------------------------------
    // Per-document protocol operations.
    // ------------------------------------------------------------------

    /// The paper's `Check_Local` against `doc`'s policy snapshot —
    /// lock-free with respect to the shard: concurrent `receive` calls
    /// on the same document never block this. `None` when `doc` is not
    /// hosted. (Administrator shards bypass the check at generation
    /// time; this still reports what the policy itself says.)
    pub fn check_local(&self, doc: DocumentId, action: &Action) -> Option<Decision> {
        let shard = self.shard(doc)?;
        Some(shard.policy.check(self.user, action))
    }

    /// Generates a cooperative operation in `doc`, journaling it (input
    /// op + produced identity) when a store is attached.
    pub fn generate(&self, doc: DocumentId, op: Op<E>) -> Result<Message<E>, CoreError> {
        self.with_shard(doc, |shard, site| {
            let input = self.store.as_ref().map(|_| op.clone());
            let q = site.generate(op)?;
            if let Some(store) = &self.store {
                store.journal_local_coop(doc, &input.expect("cloned with store"), &q);
            }
            self.maybe_compact(doc, shard, site);
            if let Some(store) = &self.store {
                store.snapshot(doc, site, false);
            }
            Ok(Message::Coop(q))
        })
        .ok_or_else(|| unknown(doc))?
    }

    /// Issues an administrative operation in `doc` (administrator only),
    /// journaling it when a store is attached.
    pub fn admin_generate(&self, doc: DocumentId, op: AdminOp) -> Result<AdminRequest, CoreError> {
        self.with_shard(doc, |shard, site| {
            let r = site.admin_generate(op)?;
            if let Some(store) = &self.store {
                store.journal_local_admin(doc, &r);
            }
            self.maybe_compact(doc, shard, site);
            if let Some(store) = &self.store {
                store.snapshot(doc, site, false);
            }
            Ok(r)
        })
        .ok_or_else(|| unknown(doc))?
    }

    /// Delivers a remote message to `doc`'s shard. With a store attached
    /// the message is journaled *before* application (write-ahead): a
    /// crash mid-apply replays it, and application — errors included —
    /// is deterministic.
    pub fn receive(&self, doc: DocumentId, msg: Message<E>) -> Result<(), CoreError> {
        self.with_shard(doc, |shard, site| {
            if let Some(store) = &self.store {
                store.journal_remote(doc, &msg);
            }
            let out = site.receive(msg);
            self.maybe_compact(doc, shard, site);
            if let Some(store) = &self.store {
                store.snapshot(doc, site, false);
            }
            out
        })
        .ok_or_else(|| unknown(doc))?
    }

    /// Runs the stability-horizon compactor on `doc`'s site, journaling
    /// the compaction point and offering the store a forced snapshot
    /// opportunity (the `auto_compact` horizon of the durability design:
    /// everything below it is settled group-wide). Returns the number of
    /// log entries reclaimed, `None` when `doc` is not hosted.
    pub fn auto_compact(&self, doc: DocumentId) -> Option<usize> {
        use std::time::Instant;
        self.with(doc, |site| {
            let before = site.engine().log().len() + site.admin_log().len();
            let t = Instant::now();
            let reclaimed = site.auto_compact();
            if reclaimed > 0 {
                let after = site.engine().log().len() + site.admin_log().len();
                let obs = self.obs.for_doc(doc.0);
                obs.observe_hist("engine.compact_ns", t.elapsed().as_nanos() as u64);
                obs.observe_hist("engine.compact_log_before", before as u64);
                obs.observe_hist("engine.compact_log_after", after as u64);
            }
            if let Some(store) = &self.store {
                store.journal_compact(doc);
                store.snapshot(doc, site, true);
            }
            reclaimed
        })
    }

    /// Drains `doc`'s outbox (empty when the document is not hosted).
    pub fn drain_outbox(&self, doc: DocumentId) -> Vec<Message<E>> {
        self.with(doc, |site| site.drain_outbox()).unwrap_or_default()
    }

    /// `doc`'s current document content, `None` when not hosted.
    pub fn document(&self, doc: DocumentId) -> Option<Document<E>> {
        self.with(doc, |site| site.document())
    }
}

impl<E: Element + std::hash::Hash> Engine<E> {
    /// `doc`'s convergence digest, `None` when not hosted.
    pub fn replica_digest(&self, doc: DocumentId) -> Option<u64> {
        self.with(doc, |site| site.replica_digest())
    }

    /// Every shard's `(document, replica digest)`, ascending document id.
    pub fn replica_digests(&self) -> Vec<(DocumentId, u64)> {
        self.docs()
            .into_iter()
            .filter_map(|doc| self.replica_digest(doc).map(|d| (doc, d)))
            .collect()
    }
}

fn unknown(doc: DocumentId) -> CoreError {
    CoreError::Protocol(format!("{doc} is not hosted by this engine"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_document::{Char, CharDocument};
    use dce_policy::{Authorization, DocObject, Right, Sign, Subject};

    fn doc(n: u64) -> DocumentId {
        DocumentId::new(n)
    }

    fn engines(n: u64) -> (Engine<Char>, Engine<Char>) {
        let adm = Engine::new_admin(0);
        let usr = Engine::new_user(1, 0);
        for d in 1..=n {
            let d0 = CharDocument::from_str("ab");
            let policy = Policy::permissive([0, 1]);
            adm.create_document(doc(d), d0.clone(), policy.clone()).unwrap();
            usr.create_document(doc(d), d0, policy).unwrap();
        }
        (adm, usr)
    }

    /// Pumps every queued message between the two engines until quiet.
    fn settle(a: &Engine<Char>, b: &Engine<Char>) {
        loop {
            let mut moved = false;
            for d in a.docs() {
                for m in a.drain_outbox(d) {
                    moved = true;
                    b.receive(d, m).unwrap();
                }
            }
            for d in b.docs() {
                for m in b.drain_outbox(d) {
                    moved = true;
                    a.receive(d, m).unwrap();
                }
            }
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn routes_operations_to_independent_documents() {
        let (adm, usr) = engines(3);
        let m1 = usr.generate(doc(1), Op::ins(1, 'x')).unwrap();
        let m3 = usr.generate(doc(3), Op::ins(1, 'y')).unwrap();
        adm.receive(doc(1), m1).unwrap();
        adm.receive(doc(3), m3).unwrap();
        settle(&adm, &usr);
        assert_eq!(adm.document(doc(1)).unwrap().to_string(), "xab");
        assert_eq!(adm.document(doc(2)).unwrap().to_string(), "ab");
        assert_eq!(adm.document(doc(3)).unwrap().to_string(), "yab");
        for d in adm.docs() {
            assert_eq!(adm.replica_digest(d), usr.replica_digest(d), "{d} diverged");
        }
    }

    #[test]
    fn unknown_documents_are_protocol_errors() {
        let (adm, _) = engines(1);
        assert!(adm.generate(doc(9), Op::ins(1, 'x')).is_err());
        assert!(adm.replica_digest(doc(9)).is_none());
        assert!(adm.check_local(doc(9), &Action::new(Right::Insert, None)).is_none());
        assert!(adm.drain_outbox(doc(9)).is_empty());
    }

    #[test]
    fn duplicate_creation_is_rejected() {
        let (adm, _) = engines(1);
        let err = adm.create_document(doc(1), CharDocument::from_str(""), Policy::permissive([0]));
        assert!(err.is_err());
        assert_eq!(adm.len(), 1);
    }

    #[test]
    fn check_local_tracks_per_document_policy() {
        let (adm, usr) = engines(2);
        let act = Action::new(Right::Insert, None);
        assert!(usr.check_local(doc(1), &act).unwrap().granted());
        // Revoke insert for user 1 in document 1 only.
        let revoke = AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(1),
                DocObject::Document,
                [Right::Insert],
                Sign::Minus,
            ),
        };
        let req = adm.admin_generate(doc(1), revoke).unwrap();
        usr.receive(doc(1), Message::Admin(req)).unwrap();
        assert!(!usr.check_local(doc(1), &act).unwrap().granted(), "doc1 revoked");
        assert!(usr.check_local(doc(2), &act).unwrap().granted(), "doc2 untouched");
    }

    #[test]
    fn faults_in_one_shard_leave_bystanders_untouched() {
        let (adm, usr) = engines(2);
        let before_adm = adm.replica_digest(doc(2)).unwrap();
        let before_usr = usr.replica_digest(doc(2)).unwrap();
        // Doc 1 takes traffic whose messages are dropped on the floor —
        // a permanently faulty shard.
        for i in 0..5 {
            let _ = usr.generate(doc(1), Op::ins(1, (b'a' + i) as char)).unwrap();
            usr.drain_outbox(doc(1)); // dropped
        }
        assert_eq!(adm.replica_digest(doc(2)).unwrap(), before_adm);
        assert_eq!(usr.replica_digest(doc(2)).unwrap(), before_usr);
        assert_eq!(adm.document(doc(2)).unwrap().to_string(), "ab");
    }

    /// The always-on compactor keeps both logs bounded near the watermark
    /// across a long session, without perturbing convergence.
    #[test]
    fn watermark_compaction_keeps_logs_bounded() {
        const WM: usize = 8;
        let adm = Engine::new_admin(0).with_compaction(WM);
        let usr = Engine::new_user(1, 0).with_compaction(WM);
        let d0 = CharDocument::from_str("ab");
        let policy = Policy::permissive([0, 1]);
        adm.create_document(doc(1), d0.clone(), policy.clone()).unwrap();
        usr.create_document(doc(1), d0, policy).unwrap();

        let mut peak = 0usize;
        for round in 0..200 {
            let m = usr.generate(doc(1), Op::ins(1, (b'a' + (round % 26) as u8) as char)).unwrap();
            adm.receive(doc(1), m).unwrap();
            settle(&adm, &usr);
            // Heartbeats advance the horizon; the watermark does the rest.
            let hu = usr.with(doc(1), |s| s.make_heartbeat()).unwrap();
            let ha = adm.with(doc(1), |s| s.make_heartbeat()).unwrap();
            adm.receive(doc(1), hu).unwrap();
            usr.receive(doc(1), ha).unwrap();
            for e in [&adm, &usr] {
                let len = e.with(doc(1), |s| s.engine().log().len() + s.admin_log().len()).unwrap();
                peak = peak.max(len);
            }
        }
        // Combined length never exceeds one watermark past the trigger
        // point (the trigger is `post-compaction length + WM`, and the
        // post-compaction residue under prompt heartbeats is small).
        assert!(peak <= 3 * WM, "logs not bounded: peak combined length {peak}");
        assert!(peak >= WM, "compactor fired before the watermark: peak {peak}");
        assert_eq!(adm.replica_digest(doc(1)), usr.replica_digest(doc(1)));
        assert_eq!(adm.document(doc(1)).unwrap(), usr.document(doc(1)).unwrap());
    }

    #[test]
    fn shards_tag_their_observability_scope() {
        let obs =
            dce_obs::ObsHandle::with_recorder(std::sync::Arc::new(dce_obs::RingRecorder::new(64)));
        let adm = Engine::new_admin(0).with_observability(obs.clone());
        adm.create_document(doc(5), CharDocument::from_str(""), Policy::permissive([0])).unwrap();
        adm.generate(doc(5), Op::ins(1, 'x')).unwrap();
        let events = obs.events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.doc == 5), "events scoped to doc5: {events:?}");
    }
}

//! Errors of the access-control layer.

use dce_policy::{Action, Decision, PolicyError, UserId};
use std::fmt;

/// Failures at the access-control layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A locally generated operation was denied by the local policy copy
    /// (the paper's `Check_Local` failing in Algorithm 2 — the operation is
    /// simply not executed).
    AccessDenied {
        /// The requesting user.
        user: UserId,
        /// The attempted action.
        action: Action,
        /// Why the policy said no.
        decision: Decision,
    },
    /// An administrative operation was attempted by a non-administrator
    /// site (§3.3: "only administrator can specify authorizations").
    NotAdministrator {
        /// The offending user.
        user: UserId,
    },
    /// The administrative operation failed against the policy state.
    Policy(PolicyError),
    /// The OT layer rejected the operation (out of bounds, mismatched
    /// element, …).
    Ot(dce_ot::OtError),
    /// A received message was malformed with respect to the protocol
    /// (e.g. a cooperative request claiming a future policy version).
    Protocol(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::AccessDenied { user, action, decision } => {
                write!(f, "access denied: user s{user} may not {action} ({decision:?})")
            }
            CoreError::NotAdministrator { user } => {
                write!(f, "user s{user} is not the administrator")
            }
            CoreError::Policy(e) => write!(f, "policy error: {e}"),
            CoreError::Ot(e) => write!(f, "ot error: {e}"),
            CoreError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PolicyError> for CoreError {
    fn from(e: PolicyError) -> Self {
        CoreError::Policy(e)
    }
}

impl From<dce_ot::OtError> for CoreError {
    fn from(e: dce_ot::OtError) -> Self {
        CoreError::Ot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_policy::Right;

    #[test]
    fn displays() {
        let e = CoreError::AccessDenied {
            user: 3,
            action: Action::new(Right::Insert, Some(1)),
            decision: Decision::DeniedByDefault,
        };
        assert!(e.to_string().contains("s3"));
        assert!(CoreError::NotAdministrator { user: 2 }.to_string().contains("s2"));
        assert!(CoreError::Protocol("x".into()).to_string().contains("x"));
        let p: CoreError = PolicyError::DuplicateUser(1).into();
        assert!(p.to_string().contains("policy error"));
        let o: CoreError = dce_ot::OtError::UnknownRequest(dce_ot::RequestId::new(1, 1)).into();
        assert!(o.to_string().contains("ot error"));
    }
}

//! # dce-core — optimistic access control for collaborative editors
//!
//! The paper's primary contribution (§5): a concurrency-control algorithm
//! that coordinates **cooperative requests** (document edits, checked
//! against a replicated policy) with **administrative requests** (policy
//! mutations issued by a single administrator), such that
//!
//! * local edits are granted or denied by the *local* policy copy alone —
//!   no server round-trip (high responsiveness);
//! * administrative requests are totally ordered by policy version;
//! * remote cooperative requests are re-checked against the administrative
//!   log `L` (`Check_Remote`), so concurrent revocations reach back across
//!   the network (paper Fig. 3);
//! * restrictive administrative requests retroactively **undo** tentative
//!   cooperative requests the new policy no longer grants (Fig. 2);
//! * the administrator **validates** each received legal request with a
//!   version-bumping `Validate` request, and user sites defer later
//!   administrative requests until the validated request has arrived —
//!   so legal operations are never lost to races (Fig. 4).
//!
//! The central type is [`Site`]: one per participant, wrapping a
//! [`dce_ot::Engine`] (document replica + OT log `H`), a
//! [`dce_policy::Policy`] copy and the administrative log `L`, plus the
//! reception queues `F` and `Q` of Algorithm 1.
//!
//! ```
//! use dce_core::{Site, Message};
//! use dce_document::{CharDocument, Op};
//! use dce_policy::Policy;
//!
//! let d0 = CharDocument::from_str("abc");
//! let policy = Policy::permissive([0, 1, 2]);
//! let mut adm = Site::new_admin(0, d0.clone(), policy.clone());
//! let mut s1 = Site::new_user(1, 0, d0.clone(), policy.clone());
//!
//! let q = s1.generate(Op::ins(1, 'x')).unwrap();
//! adm.receive(Message::Coop(q)).unwrap();
//! // The administrator validated the request:
//! assert_eq!(adm.drain_outbox().len(), 1);
//! assert_eq!(adm.document().to_string(), "xabc");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod error;
pub mod gc;
pub mod reference;
pub mod request;
mod scheduler;
pub mod shard;
pub mod site;

pub use audit::{audit, metrics, AuditRecord, SiteMetrics};
pub use engine::{Engine, ShardStore};
pub use error::CoreError;
pub use reference::ScanSite;
pub use request::{AdminProposal, CoopRequest, Flag, Message};
pub use shard::{DocumentId, FlagTable};
pub use site::{Checkpoint, Site};

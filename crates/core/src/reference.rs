//! The pre-index reception loop, kept as a reference oracle.
//!
//! [`Site`] used to implement Algorithm 1 literally: push every received
//! message into the `F`/`Q` vectors, then fixpoint-*scan* both queues for
//! causally ready requests after every delivery — O(|F|+|Q|) per message.
//! The scheduler refactor replaced the scans with wake lists; this module
//! preserves the original scan loop **outside** `Site`, driving an inner
//! site that only ever sees messages the scan has proven ready (a ready
//! message is processed by the inner site immediately, so the inner queues
//! stay empty and all queueing semantics live here).
//!
//! It exists for two consumers and is not a production code path:
//!
//! * the `scheduler_matches_scan_drain` differential proptest, which
//!   replays random delivery schedules into a [`ScanSite`] and a plain
//!   [`Site`] and requires identical documents, policies, flags and
//!   diagnostics;
//! * `benches/drain_scaling.rs` and the `hotpaths` bench binary, which
//!   measure the scan loop as the pre-refactor baseline.

use crate::error::CoreError;
use crate::request::{CoopRequest, Message};
use crate::site::Site;
use dce_document::Element;
use dce_ot::RequestId;
use dce_policy::{AdminOp, AdminRequest};

/// A [`Site`] wrapped in the original scan-based reception loop.
#[derive(Debug, Clone)]
pub struct ScanSite<E> {
    site: Site<E>,
    /// Reception queue `F` (cooperative), scanned linearly.
    coop: Vec<CoopRequest<E>>,
    /// Reception queue `Q` (administrative), scanned linearly.
    admin: Vec<AdminRequest>,
}

impl<E: Element> ScanSite<E> {
    /// Wraps a site (normally freshly built) in the scan loop.
    pub fn new(site: Site<E>) -> Self {
        ScanSite { site, coop: Vec::new(), admin: Vec::new() }
    }

    /// The wrapped site (documents, policy, flags, outbox…).
    pub fn site(&self) -> &Site<E> {
        &self.site
    }

    /// Mutable access to the wrapped site (e.g. to drain its outbox).
    pub fn site_mut(&mut self) -> &mut Site<E> {
        &mut self.site
    }

    /// Number of queued (not yet causally ready) messages.
    pub fn queued(&self) -> usize {
        self.coop.len() + self.admin.len()
    }

    /// Algorithm 1, as originally implemented: enqueue with the duplicate
    /// guard at the door, then fixpoint-scan both queues.
    pub fn receive(&mut self, msg: Message<E>) -> Result<(), CoreError> {
        match msg {
            Message::Coop(q) => {
                if !self.site.engine().has_seen(q.ot.id)
                    && !self.coop.iter().any(|held| held.ot.id == q.ot.id)
                {
                    self.coop.push(q);
                }
            }
            Message::Admin(r) => {
                if r.version > self.site.policy().version()
                    && !self.admin.iter().any(|held| held.version == r.version)
                {
                    self.admin.push(r);
                }
            }
            other => self.site.receive(other)?,
        }
        self.drain()
    }

    fn drain(&mut self) -> Result<(), CoreError> {
        loop {
            let mut progressed = false;

            // Queue hygiene: drop messages made stale by processed history.
            let before = self.coop.len() + self.admin.len();
            {
                let engine = self.site.engine();
                self.coop.retain(|q| !engine.has_seen(q.ot.id));
            }
            let version = self.site.policy().version();
            self.admin.retain(|r| r.version > version);
            if self.coop.len() + self.admin.len() != before {
                progressed = true;
            }

            // Administrative requests first: version order is total, so at
            // most one is ready at a time.
            if let Some(idx) = self.admin.iter().position(|r| self.admin_ready(r)) {
                let r = self.admin.remove(idx);
                self.site.receive(Message::Admin(r))?;
                progressed = true;
            }

            if let Some(idx) = self.coop.iter().position(|q| self.coop_ready(q)) {
                let q = self.coop.remove(idx);
                self.site.receive(Message::Coop(q))?;
                progressed = true;
            }

            if !progressed {
                return Ok(());
            }
        }
    }

    fn coop_ready(&self, q: &CoopRequest<E>) -> bool {
        q.v <= self.site.policy().version() && self.site.engine().is_ready(&q.ot)
    }

    fn admin_ready(&self, r: &AdminRequest) -> bool {
        if r.version != self.site.policy().version() + 1 {
            return false;
        }
        match &r.op {
            AdminOp::Validate { site, seq } => {
                self.site.engine().has_seen(RequestId::new(*site, *seq))
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_document::{Char, CharDocument, Op};
    use dce_policy::Policy;

    #[test]
    fn scan_loop_holds_and_releases_like_the_scheduler() {
        let p = Policy::permissive([0, 1, 2]);
        let mut s1: Site<Char> = Site::new_user(1, 0, CharDocument::from_str("abc"), p.clone());
        let q1 = s1.generate(Op::ins(1, 'x')).unwrap();
        let q2 = s1.generate(Op::ins(1, 'y')).unwrap();

        let mut observer: ScanSite<Char> =
            ScanSite::new(Site::new_user(2, 0, CharDocument::from_str("abc"), p));
        observer.receive(Message::Coop(q2.clone())).unwrap();
        assert_eq!(observer.queued(), 1);
        observer.receive(Message::Coop(q2)).unwrap();
        assert_eq!(observer.queued(), 1, "duplicate rejected at the door");
        observer.receive(Message::Coop(q1)).unwrap();
        assert_eq!(observer.queued(), 0);
        assert_eq!(observer.site().document().to_string(), "yxabc");
    }
}

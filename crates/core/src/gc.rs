//! Log compaction (garbage collection) — the paper's §7 future-work item.
//!
//! "As the length of local (administrative and cooperative) logs increases
//! rapidly during collaboration sessions, we plan to address the garbage
//! collection problem." This module implements the natural solution for the
//! cooperative log `H`: a prefix of the log can be dropped once every entry
//! in it is **stable** —
//!
//! * *acknowledged everywhere*: contained in every participant's causal
//!   clock, so every future request's generation context includes it and
//!   its transformed form is never consulted again; and
//! * *settled*: `Valid` or `Invalid`, never `Tentative` — tentative entries
//!   can still be retroactively undone, which requires their log forms.
//!
//! The group-wide acknowledgement clock (the pointwise minimum of all
//! sites' clocks) is computed by the session layer (`dce-editor`) from
//! periodic heartbeat clocks; this module only needs the result.

use crate::request::Flag;
use crate::site::Site;
use dce_document::Element;
use dce_ot::ids::Clock;

/// Pointwise minimum of a set of clocks: the requests every participant
/// has integrated. Sites absent from `clocks` contribute nothing, so an
/// empty input yields the empty clock (nothing stable).
pub fn stability_horizon<'a>(clocks: impl IntoIterator<Item = &'a Clock>) -> Clock {
    let mut iter = clocks.into_iter();
    let Some(first) = iter.next() else {
        return Clock::new();
    };
    let mut horizon = first.clone();
    for c in iter {
        let mut merged = Clock::new();
        for (site, n) in horizon.iter() {
            let other = c.get(site);
            let min = n.min(other);
            if min > 0 {
                merged.set(site, min);
            }
        }
        horizon = merged;
    }
    horizon
}

/// The request ids of the maximal compactible log prefix of `site`: every
/// entry below `horizon` and settled, stopping at the first entry that is
/// not. These are exactly the requests [`compact`] would reclaim —
/// observability emits a `ReqStable` event per id before the log forms
/// are dropped.
pub fn settled_prefix<E: Element>(site: &Site<E>, horizon: &Clock) -> Vec<dce_ot::ids::RequestId> {
    let mut ids = Vec::new();
    for entry in site.engine().log().iter() {
        let settled = matches!(site.flag_of(entry.id), Some(Flag::Valid) | Some(Flag::Invalid));
        if settled && horizon.contains(entry.id) {
            ids.push(entry.id);
        } else {
            break;
        }
    }
    ids
}

/// Compacts the cooperative log of `site`: drops the maximal log prefix
/// whose entries are all below `horizon` and settled. Returns the number
/// of entries removed.
pub fn compact<E: Element>(site: &mut Site<E>, horizon: &Clock) -> usize {
    let n = settled_prefix(site, horizon).len();
    site.prune_log_prefix(n);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Message;
    use dce_document::{Char, CharDocument, Op};
    use dce_policy::Policy;

    fn doc(s: &str) -> CharDocument {
        CharDocument::from_str(s)
    }

    #[test]
    fn horizon_is_pointwise_min() {
        let mut a = Clock::new();
        a.set(1, 3);
        a.set(2, 2);
        let mut b = Clock::new();
        b.set(1, 1);
        b.set(2, 5);
        b.set(3, 1);
        let h = stability_horizon([&a, &b]);
        assert_eq!(h.get(1), 1);
        assert_eq!(h.get(2), 2);
        assert_eq!(h.get(3), 0);
        assert_eq!(stability_horizon([]).total(), 0);
    }

    #[test]
    fn compaction_keeps_sessions_working() {
        let p = Policy::permissive([0, 1, 2]);
        let mut adm: Site<Char> = Site::new_admin(0, doc("abc"), p.clone());
        let mut s1: Site<Char> = Site::new_user(1, 0, doc("abc"), p.clone());
        let mut s2: Site<Char> = Site::new_user(2, 0, doc("abc"), p);

        // s1 edits; everyone applies; admin validates; everyone applies the
        // validations.
        let mut validations = Vec::new();
        let mut reqs = Vec::new();
        for (pos, c) in [(1, 'x'), (2, 'y')] {
            let q = s1.generate(Op::ins(pos, c)).unwrap();
            adm.receive(Message::Coop(q.clone())).unwrap();
            validations.extend(adm.drain_outbox());
            reqs.push(q);
        }
        for q in &reqs {
            s2.receive(Message::Coop(q.clone())).unwrap();
        }
        for m in validations {
            s1.receive(m.clone()).unwrap();
            s2.receive(m).unwrap();
        }

        // Everyone has everything: the horizon covers both requests.
        let clocks = [
            adm.engine().clock().clone(),
            s1.engine().clock().clone(),
            s2.engine().clock().clone(),
        ];
        let horizon = stability_horizon(clocks.iter());
        assert_eq!(horizon.get(1), 2);

        assert_eq!(compact(&mut s1, &horizon), 2);
        assert_eq!(s1.engine().log().len(), 0);
        assert_eq!(s1.engine().pruned_count(), 2);
        assert_eq!(compact(&mut s2, &horizon), 2);

        // The session continues to work after compaction: concurrent edits
        // still converge.
        let q1 = s1.generate(Op::ins(1, 'a')).unwrap();
        let q2 = s2.generate(Op::del(1, 'x')).unwrap();
        s1.receive(Message::Coop(q2.clone())).unwrap();
        s2.receive(Message::Coop(q1.clone())).unwrap();
        adm.receive(Message::Coop(q1)).unwrap();
        adm.receive(Message::Coop(q2)).unwrap();
        assert_eq!(s1.document(), s2.document());
        assert_eq!(adm.document(), s1.document());
    }

    #[test]
    fn tentative_entries_block_compaction() {
        let p = Policy::permissive([0, 1]);
        let mut s1: Site<Char> = Site::new_user(1, 0, doc("abc"), p);
        let q = s1.generate(Op::ins(1, 'x')).unwrap();
        // Even a fully acknowledged clock cannot compact a tentative entry.
        let mut horizon = Clock::new();
        horizon.set(1, q.ot.id.seq);
        assert_eq!(compact(&mut s1, &horizon), 0);
        assert_eq!(s1.engine().log().len(), 1);
    }
}

//! Per-document shard state: [`DocumentId`] and the [`FlagTable`].
//!
//! The paper specifies its model per document — one shared object, one
//! policy object, one administrator. A production process serves thousands
//! of documents at once, so everything that is *per document* must be
//! addressable by an explicit key instead of being implied by "the one
//! `Site` in this process". This module holds the two pieces that
//! [`crate::site::Site`] keeps per document besides the OT engine and the
//! scheduler:
//!
//! * [`DocumentId`] — the shard key, threaded through the wire codec,
//!   snapshots, observability events and the multi-document
//!   [`crate::engine::Engine`];
//! * [`FlagTable`] — the per-request flag table together with the
//!   tentative-generation-version side table that retroactive enforcement
//!   replays `Check_Remote` against.

use crate::request::Flag;
use dce_ot::RequestId;
use dce_policy::PolicyVersion;
use std::collections::HashMap;
use std::fmt;

/// Identifies one shared document (one shard) within a process.
///
/// `0` is reserved: it names "the document" in single-document contexts —
/// every pre-sharding call site, every v2 wire frame — so legacy state
/// decodes onto the root shard unchanged.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct DocumentId(pub u64);

impl DocumentId {
    /// The reserved single-document id (`0`).
    pub const ROOT: DocumentId = DocumentId(0);

    /// Builds a document id.
    pub const fn new(id: u64) -> Self {
        DocumentId(id)
    }

    /// The raw id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` for the reserved root/default id.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DocumentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

impl From<u64> for DocumentId {
    fn from(id: u64) -> Self {
        DocumentId(id)
    }
}

/// The per-request flag table of one shard.
///
/// Pairs every known request with its validation flag (`Tentative` /
/// `Valid` / `Invalid`) and keeps, for requests still tentative, the policy
/// version they were generated under (`q.v` on the wire). Retroactive
/// enforcement replays the receivers' `Check_Remote` — "does a restrictive
/// administrative request *concurrent* with `q` revoke its access?" — and
/// that question needs `q.v` long after the request itself was integrated.
/// The version entry is dropped the moment a request settles `Valid` or
/// `Invalid`.
///
/// Left alone the table grows one entry per request for the life of the
/// session — the one per-request structure log compaction would otherwise
/// leave unbounded. [`FlagTable::prune_settled`] drops an entry once its
/// request is settled *and* stable group-wide (its log form was just
/// compacted away), folding the entry's hash into an order-independent
/// XOR accumulator. Digests are computed over that accumulator plus the
/// live settled entries, so replicas that prune at different moments —
/// or never prune at all — still digest-converge, the same behavioral
/// trick [`dce_policy::AdminLog`] uses for non-restrictive entries.
#[derive(Debug, Clone, Default)]
pub struct FlagTable {
    flags: HashMap<RequestId, Flag>,
    tentative_v: HashMap<RequestId, PolicyVersion>,
    /// XOR of [`FlagTable::entry_hash`] over every pruned settled entry.
    pruned_fold: u64,
}

impl FlagTable {
    /// An empty table.
    pub fn new() -> Self {
        FlagTable::default()
    }

    /// Rebuilds a table from snapshot parts.
    pub fn from_parts(
        flags: Vec<(RequestId, Flag)>,
        tentative_v: Vec<(RequestId, PolicyVersion)>,
        pruned_fold: u64,
    ) -> Self {
        FlagTable {
            flags: flags.into_iter().collect(),
            tentative_v: tentative_v.into_iter().collect(),
            pruned_fold,
        }
    }

    /// Replica-stable hash of one settled entry (both sides of the fold:
    /// accumulation on prune, enumeration on digest).
    fn entry_hash(id: RequestId, flag: Flag) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        flag.hash(&mut h);
        h.finish()
    }

    /// Drops the entry of `id` if it is settled, folding its hash into
    /// the pruned accumulator; tentative (or unknown) entries are left in
    /// place. Returns whether an entry was dropped.
    ///
    /// Only safe for requests that are stable group-wide: every replica
    /// has integrated them (so duplicates are deduplicated before they
    /// could re-insert the id) and their flags can never transition again.
    pub fn prune_settled(&mut self, id: RequestId) -> bool {
        match self.flags.get(&id) {
            Some(&f) if f != Flag::Tentative => {
                self.flags.remove(&id);
                self.tentative_v.remove(&id);
                self.pruned_fold ^= Self::entry_hash(id, f);
                true
            }
            _ => false,
        }
    }

    /// The pruned-entry accumulator (persisted by snapshots so a restored
    /// replica digests identically to its donor).
    pub fn pruned_fold(&self) -> u64 {
        self.pruned_fold
    }

    /// Order-independent fold over *all* settled entries this table has
    /// ever recorded — pruned or still present. Equal across replicas
    /// whenever their settled-flag histories are, regardless of who
    /// compacted when.
    pub fn settled_fold(&self) -> u64 {
        self.flags
            .iter()
            .filter(|(_, f)| **f != Flag::Tentative)
            .fold(self.pruned_fold, |acc, (id, f)| acc ^ Self::entry_hash(*id, *f))
    }

    /// The still-tentative request ids, sorted (tentative entries are
    /// never pruned, so these are content-hashed directly).
    pub fn tentative_flags_sorted(&self) -> Vec<RequestId> {
        let mut v: Vec<_> =
            self.flags.iter().filter(|(_, f)| **f == Flag::Tentative).map(|(id, _)| *id).collect();
        v.sort_unstable();
        v
    }

    /// Flag of `id`, if known.
    pub fn flag_of(&self, id: RequestId) -> Option<Flag> {
        self.flags.get(&id).copied()
    }

    /// Sets the flag of `id` (inserting it if new).
    pub fn set_flag(&mut self, id: RequestId, flag: Flag) {
        self.flags.insert(id, flag);
    }

    /// Records `id` as tentative, generated under policy version `v`.
    pub fn mark_tentative(&mut self, id: RequestId, v: PolicyVersion) {
        self.flags.insert(id, Flag::Tentative);
        self.tentative_v.insert(id, v);
    }

    /// Settles `id` with a final flag, dropping its tentative version.
    pub fn settle(&mut self, id: RequestId, flag: Flag) {
        debug_assert_ne!(flag, Flag::Tentative, "settling must finalize the flag");
        self.flags.insert(id, flag);
        self.tentative_v.remove(&id);
    }

    /// Drops the tentative version of `id` without touching its flag (a
    /// validation for a request this site stored invalid).
    pub fn clear_tentative(&mut self, id: RequestId) {
        self.tentative_v.remove(&id);
    }

    /// The generation version of a still-tentative request (`0` if
    /// unknown, matching the wire default).
    pub fn tentative_version(&self, id: RequestId) -> PolicyVersion {
        self.tentative_v.get(&id).copied().unwrap_or(0)
    }

    /// All known flags (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (RequestId, Flag)> + '_ {
        self.flags.iter().map(|(id, f)| (*id, *f))
    }

    /// The flag entries sorted by request id (digests, snapshots).
    pub fn flags_sorted(&self) -> Vec<(RequestId, Flag)> {
        let mut v: Vec<_> = self.flags.iter().map(|(k, f)| (*k, *f)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// The tentative-version entries sorted by request id.
    pub fn tentative_sorted(&self) -> Vec<(RequestId, PolicyVersion)> {
        let mut v: Vec<_> = self.tentative_v.iter().map(|(k, ver)| (*k, *ver)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Number of known requests.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` when no request is known.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Feeds the table into `h` in a replica-stable, pruning-invariant
    /// form: the settled fold (covering pruned and live settled entries
    /// alike), then the sorted tentative ids, then their generation
    /// versions.
    pub fn digest_into<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.settled_fold().hash(h);
        self.tentative_flags_sorted().hash(h);
        self.tentative_sorted().hash(h);
    }

    /// The table's behavioral digest (see [`FlagTable::digest_into`]).
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.digest_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(site: u32, seq: u64) -> RequestId {
        RequestId::new(site, seq)
    }

    #[test]
    fn document_id_defaults_to_root() {
        assert_eq!(DocumentId::default(), DocumentId::ROOT);
        assert!(DocumentId::ROOT.is_root());
        assert!(!DocumentId::new(7).is_root());
        assert_eq!(DocumentId::new(7).to_string(), "doc7");
        assert_eq!(DocumentId::from(3u64).as_u64(), 3);
    }

    #[test]
    fn settling_drops_the_tentative_version() {
        let mut t = FlagTable::new();
        t.mark_tentative(id(1, 1), 4);
        assert_eq!(t.flag_of(id(1, 1)), Some(Flag::Tentative));
        assert_eq!(t.tentative_version(id(1, 1)), 4);
        t.settle(id(1, 1), Flag::Valid);
        assert_eq!(t.flag_of(id(1, 1)), Some(Flag::Valid));
        assert_eq!(t.tentative_version(id(1, 1)), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = FlagTable::new();
        a.mark_tentative(id(1, 1), 2);
        a.set_flag(id(2, 1), Flag::Valid);
        let mut b = FlagTable::new();
        b.set_flag(id(2, 1), Flag::Valid);
        b.mark_tentative(id(1, 1), 2);
        let digest = |t: &FlagTable| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            t.digest_into(&mut h);
            std::hash::Hasher::finish(&h)
        };
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn parts_roundtrip() {
        let mut t = FlagTable::new();
        t.mark_tentative(id(1, 1), 2);
        t.set_flag(id(2, 3), Flag::Invalid);
        t.set_flag(id(2, 4), Flag::Valid);
        assert!(t.prune_settled(id(2, 4)));
        let u = FlagTable::from_parts(t.flags_sorted(), t.tentative_sorted(), t.pruned_fold());
        assert_eq!(u.flags_sorted(), t.flags_sorted());
        assert_eq!(u.tentative_sorted(), t.tentative_sorted());
        assert_eq!(u.digest(), t.digest());
    }

    #[test]
    fn pruning_preserves_the_digest() {
        let mut full = FlagTable::new();
        full.set_flag(id(1, 1), Flag::Valid);
        full.set_flag(id(2, 1), Flag::Invalid);
        full.mark_tentative(id(1, 2), 3);
        let mut pruned = full.clone();
        assert!(pruned.prune_settled(id(1, 1)));
        assert!(pruned.prune_settled(id(2, 1)));
        assert_eq!(pruned.len(), 1, "only the tentative entry survives");
        // A replica that pruned and one that never did stay comparable.
        assert_eq!(pruned.digest(), full.digest());
        assert_eq!(pruned.settled_fold(), full.settled_fold());
        // Pruning order does not matter either.
        let mut other = full.clone();
        assert!(other.prune_settled(id(2, 1)));
        assert_eq!(other.digest(), full.digest());
    }

    #[test]
    fn tentative_entries_refuse_to_prune() {
        let mut t = FlagTable::new();
        t.mark_tentative(id(1, 1), 2);
        assert!(!t.prune_settled(id(1, 1)), "tentative entries can still transition");
        assert!(!t.prune_settled(id(9, 9)), "unknown ids are a no-op");
        assert_eq!(t.len(), 1);
        assert_eq!(t.pruned_fold(), 0);
    }
}

//! Bounded scenarios: the paper's figures as explorable programs.
//!
//! A scenario fixes the group (one administrator at site 0 plus users),
//! the initial document and policy, and one scripted *program* of local
//! actions per site. The explorer then drives every interleaving of
//! program steps and message deliveries.
//!
//! Program actions carry position/character *intents*, not concrete
//! operations: by the time a site executes its next action, concurrent
//! deliveries may have reshaped its replica, so the runner folds the
//! intent into the current document (positions wrap modulo the visible
//! length, deletions of an empty document become no-ops). Every
//! interleaving therefore yields applicable operations, and the schedule
//! space stays uniform across branches.

use dce_policy::{AdminOp, Authorization, DocObject, Policy, Right, Sign, Subject, UserId};

/// One scripted local action (see the module docs for intent folding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalAction {
    /// Insert `ch` at the folded position.
    Insert {
        /// Position intent (folded modulo `len + 1`).
        pos: usize,
        /// The character to insert.
        ch: char,
    },
    /// Delete the element at the folded position (no-op when empty).
    Delete {
        /// Position intent (folded modulo `len`).
        pos: usize,
    },
    /// Overwrite the element at the folded position with `ch` (no-op when
    /// empty).
    Update {
        /// Position intent (folded modulo `len`).
        pos: usize,
        /// The replacement character.
        ch: char,
    },
    /// An administrative operation — the acting site must be the
    /// administrator.
    Admin(AdminOp),
}

/// A bounded exploration scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (`fig2`, …).
    pub name: String,
    /// Initial document content, shared by every site.
    pub initial: String,
    /// Initial policy, shared by every site.
    pub policy: Policy,
    /// Per-site programs; index 0 is the administrator.
    pub programs: Vec<Vec<LocalAction>>,
    /// Per-message duplicate-delivery allowance explored on top of the
    /// final delivery (0 = exactly-once choices only).
    pub max_dups: u8,
    /// Round-trip every delivery through the binary wire codec.
    pub wire_codec: bool,
}

impl Scenario {
    /// Number of sites (administrator included).
    pub fn sites(&self) -> usize {
        self.programs.len()
    }

    /// Builds a figure scenario by name (`fig1` … `fig5`) with `sites`
    /// sites and `ops` cooperative operations. Returns `None` for an
    /// unknown name or fewer than two sites.
    pub fn by_name(name: &str, sites: usize, ops: usize) -> Option<Scenario> {
        if sites < 2 {
            return None;
        }
        match name {
            "fig1" => Some(Self::fig1(sites, ops)),
            "fig2" => Some(Self::fig2(sites, ops)),
            "fig3" => Some(Self::fig3(sites, ops)),
            "fig4" => Some(Self::fig4(sites, ops)),
            "fig5" => Some(Self::fig5(sites, ops)),
            _ => None,
        }
    }

    fn base(name: &str, sites: usize) -> Scenario {
        Scenario {
            name: name.to_owned(),
            initial: "abc".to_owned(),
            policy: Policy::permissive(0..sites as UserId),
            programs: vec![Vec::new(); sites],
            max_dups: 0,
            wire_codec: true,
        }
    }

    /// A document-wide revocation of `right` for `user` (prepended, so it
    /// shadows the permissive grant — the Fig. 2/3 shape).
    pub fn revoke(right: Right, user: UserId) -> AdminOp {
        AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(
                Subject::User(user),
                DocObject::Document,
                [right],
                Sign::Minus,
            ),
        }
    }

    /// A document-wide grant of `right` for `user`, prepended.
    pub fn grant(right: Right, user: UserId) -> AdminOp {
        AdminOp::AddAuth {
            pos: 0,
            auth: Authorization::new(Subject::User(user), DocObject::Document, [right], Sign::Plus),
        }
    }

    /// Distributes `ops` mixed cooperative edits round-robin over the user
    /// sites `1..sites`, cycling insert/delete/update intents.
    fn spread_coop(programs: &mut [Vec<LocalAction>], ops: usize) {
        let users = programs.len() - 1;
        const CHARS: [char; 4] = ['x', 'y', 'z', 'w'];
        for i in 0..ops {
            let site = 1 + i % users;
            let action = match i % 3 {
                0 => LocalAction::Insert { pos: i + 1, ch: CHARS[i % CHARS.len()] },
                1 => LocalAction::Delete { pos: i + 1 },
                _ => LocalAction::Update { pos: i + 1, ch: CHARS[(i + 1) % CHARS.len()] },
            };
            programs[site].push(action);
        }
    }

    /// Fig. 1: pure OT convergence — concurrent edits, no administrative
    /// traffic.
    pub fn fig1(sites: usize, ops: usize) -> Scenario {
        let mut s = Self::base("fig1", sites);
        Self::spread_coop(&mut s.programs, ops);
        s
    }

    /// Fig. 2: the revocation race — the administrator revokes user 1's
    /// insert right concurrently with the users' inserts; tentative
    /// inserts overtaken by the revocation must be retroactively undone.
    pub fn fig2(sites: usize, ops: usize) -> Scenario {
        let mut s = Self::base("fig2", sites);
        s.programs[0].push(LocalAction::Admin(Self::revoke(Right::Insert, 1)));
        let users = sites - 1;
        const CHARS: [char; 4] = ['x', 'y', 'z', 'w'];
        for i in 0..ops {
            let site = 1 + i % users;
            s.programs[site].push(LocalAction::Insert { pos: i + 1, ch: CHARS[i % CHARS.len()] });
        }
        s
    }

    /// Fig. 3: why the administrative log is necessary — a revocation of
    /// user 1's delete right followed by a re-grant, concurrent with user
    /// 1 deleting; the deletion's fate depends on which policy version it
    /// is checked against.
    pub fn fig3(sites: usize, ops: usize) -> Scenario {
        let mut s = Self::base("fig3", sites);
        s.programs[0].push(LocalAction::Admin(Self::revoke(Right::Delete, 1)));
        s.programs[0].push(LocalAction::Admin(Self::grant(Right::Delete, 1)));
        s.programs[1].push(LocalAction::Delete { pos: 1 });
        Self::spread_coop(&mut s.programs, ops.saturating_sub(1));
        s
    }

    /// Fig. 4: the validation protocol — user 1 issues a causal chain of
    /// inserts, the administrator validates each one it receives and
    /// (concurrently) revokes user 1's insert right; validated requests
    /// must survive the revocation at every site.
    pub fn fig4(sites: usize, ops: usize) -> Scenario {
        let mut s = Self::base("fig4", sites);
        s.programs[0].push(LocalAction::Admin(Self::revoke(Right::Insert, 1)));
        const CHARS: [char; 4] = ['x', 'y', 'z', 'w'];
        for i in 0..ops {
            s.programs[1].push(LocalAction::Insert { pos: i + 1, ch: CHARS[i % CHARS.len()] });
        }
        s
    }

    /// Fig. 5: the paper's illustrative session — an administrator edit,
    /// concurrent user edits including deletions, and a revocation of
    /// user 1's delete right.
    pub fn fig5(sites: usize, ops: usize) -> Scenario {
        let mut s = Self::base("fig5", sites);
        s.programs[0].push(LocalAction::Insert { pos: 2, ch: 'y' });
        s.programs[0].push(LocalAction::Admin(Self::revoke(Right::Delete, 1)));
        let users = sites - 1;
        for i in 0..ops.saturating_sub(1) {
            let site = 1 + i % users;
            let action = if site == 1 {
                LocalAction::Delete { pos: i + 1 }
            } else {
                LocalAction::Insert { pos: i + 2, ch: 'x' }
            };
            s.programs[site].push(action);
        }
        s
    }
}

//! # dce-check — a deterministic schedule-space explorer
//!
//! A mini model checker for the collaborative-editing stack: it drives a
//! set of in-process [`dce_core::Site`]s through **every** delivery
//! interleaving of a bounded scenario (N sites, K scripted operations,
//! optional duplicate deliveries) and checks invariant oracles at every
//! quiescent state:
//!
//! 1. **Convergence** — documents, policies, administrative logs and flag
//!    tables agree across sites (the paper's Thm. 5.1 obligation).
//! 2. **Security** — nothing the final policy forbids survives in any
//!    document, and nothing flagged `Invalid` has a document effect
//!    (§4.2).
//! 3. **Legality** — every request the administrator validated under the
//!    Fig. 4 protocol ends `Valid` at every site.
//! 4. **Determinism** — strictly replaying the schedule that reached a
//!    state reproduces every site bit for bit.
//!
//! The exploration is an explicit work-stack DFS (no recursion, bounded
//! only by the scenario) with sleep-set partial-order reduction and
//! behavioral-digest state dedupe — see [`explore`] and the module docs
//! of [`mod@explore`]. The first violation is greedily delta-debugged
//! into a 1-minimal, replayable [`Schedule`] suitable for pinning as a
//! regression (see `crates/check/tests/regressions.rs`).
//!
//! ```
//! use dce_check::{explore, Scenario, Verdict};
//!
//! let scenario = Scenario::by_name("fig2", 2, 2).unwrap();
//! match explore(&scenario) {
//!     Verdict::Ok(stats) => assert!(stats.quiescent > 0),
//!     Verdict::Violation(cx) => panic!("{}\n{}", cx.violation, cx.schedule.to_rust_literal()),
//! }
//! ```
//!
//! The companion binary explores figure scenarios from the command line:
//!
//! ```text
//! cargo run -p dce-check --release -- --scenario fig2 --sites 3 --ops 4
//! ```

#![warn(missing_docs)]

mod explore;
mod oracle;
mod runner;
mod scenario;
mod schedule;
mod shrink;

pub use explore::{explore, explore_with, Config, Counterexample, Stats, Verdict};
pub use oracle::Violation;
pub use scenario::{LocalAction, Scenario};
pub use schedule::{Schedule, Step};

//! The execution substrate shared by the explorer, schedule replay and
//! shrinking: one [`ScriptedNet`] plus per-site program counters, driven
//! one [`Choice`] at a time.

use crate::oracle::Violation;
use crate::scenario::{LocalAction, Scenario};
use crate::schedule::Step;
use dce_core::{CoreError, Site};
use dce_document::{Char, CharDocument, Op};
use dce_net::ScriptedNet;
use dce_policy::UserId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One enabled transition of the global state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Choice {
    /// Site `site` executes its next program action.
    Gen {
        /// The acting site.
        site: usize,
    },
    /// In-flight message `id` is delivered to `dest` — consuming it, or
    /// (with `dup`) delivering an extra copy that keeps it in flight.
    Deliver {
        /// The flight's send identifier.
        id: u64,
        /// Its destination site.
        dest: usize,
        /// Duplicate delivery instead of the consuming one.
        dup: bool,
    },
}

/// Path-stable identity of a transition, used by sleep sets and visited
/// bookkeeping. Send identifiers are path-dependent (they count prior
/// broadcasts), so deliveries are keyed by *content*: destination plus
/// message hash. Two transitions with different `site` fields target
/// disjoint state (one site each, plus appends to the unordered in-flight
/// multiset): they commute and neither can disable the other — the
/// independence relation of the partial-order reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct EventKey {
    /// The one site whose state the transition reads and writes.
    pub site: usize,
    /// 0 = generate, 1 = deliver, 2 = duplicate.
    pub kind: u8,
    /// Program counter (generate) or message content hash (deliveries).
    pub payload: u64,
}

/// The explorable global state: net + program counters.
#[derive(Clone)]
pub(crate) struct Runner {
    pub scenario: Arc<Scenario>,
    pub net: ScriptedNet<Char>,
    pub pcs: Vec<usize>,
}

impl Runner {
    pub fn new(scenario: Arc<Scenario>) -> Runner {
        let d0 = CharDocument::from_str(&scenario.initial);
        let n = scenario.sites();
        let mut sites = Vec::with_capacity(n);
        sites.push(Site::new_admin(0, d0.clone(), scenario.policy.clone()));
        for i in 1..n {
            sites.push(Site::new_user(i as UserId, 0, d0.clone(), scenario.policy.clone()));
        }
        let mut net = ScriptedNet::from_sites(sites, scenario.max_dups);
        net.set_wire_codec(scenario.wire_codec);
        Runner { scenario, net, pcs: vec![0; n] }
    }

    /// Behavioral digest of the global state (sites, in-flight multiset,
    /// program counters) — the visited-set key.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.net.digest().hash(&mut h);
        self.pcs.hash(&mut h);
        h.finish()
    }

    /// `true` when nothing can happen any more: all programs finished and
    /// no message in flight.
    pub fn is_quiescent(&self) -> bool {
        self.net.is_quiescent()
            && self.pcs.iter().zip(&self.scenario.programs).all(|(pc, prog)| *pc >= prog.len())
    }

    /// Every enabled transition, in canonical order (generates by site,
    /// then consuming deliveries by send id, then duplicates by send id),
    /// with content-identical delivery choices deduplicated: delivering
    /// either of two equal copies addressed to the same site leads to the
    /// same state, so only the oldest is offered.
    pub fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (site, pc) in self.pcs.iter().enumerate() {
            if *pc < self.scenario.programs[site].len() {
                out.push(Choice::Gen { site });
            }
        }
        let mut seen = Vec::new();
        for f in self.net.inflight() {
            let key = (f.dest, hash_msg(&f.msg));
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            out.push(Choice::Deliver { id: f.id, dest: f.dest, dup: false });
        }
        let mut seen_dup = Vec::new();
        for f in self.net.inflight() {
            if f.dups_left == 0 {
                continue;
            }
            let key = (f.dest, hash_msg(&f.msg));
            if seen_dup.contains(&key) {
                continue;
            }
            seen_dup.push(key);
            out.push(Choice::Deliver { id: f.id, dest: f.dest, dup: true });
        }
        out
    }

    /// The path-stable key of an enabled choice.
    pub fn key_of(&self, c: Choice) -> EventKey {
        match c {
            Choice::Gen { site } => EventKey { site, kind: 0, payload: self.pcs[site] as u64 },
            Choice::Deliver { id, dest, dup } => {
                let f = self
                    .net
                    .inflight()
                    .iter()
                    .find(|f| f.id == id)
                    .expect("keyed choice is in flight");
                EventKey { site: dest, kind: if dup { 2 } else { 1 }, payload: hash_msg(&f.msg) }
            }
        }
    }

    /// The replayable [`Step`] form of an enabled choice: deliveries are
    /// addressed by `(dest, slot)` where `slot` counts the destination's
    /// in-flight messages in send order — stable under replay, unlike raw
    /// send identifiers.
    pub fn step_of(&self, c: Choice) -> Step {
        match c {
            Choice::Gen { site } => Step::Gen { site },
            Choice::Deliver { id, dest, dup } => {
                let slot = self
                    .net
                    .inflight()
                    .iter()
                    .filter(|f| f.dest == dest)
                    .position(|f| f.id == id)
                    .expect("stepped choice is in flight");
                if dup {
                    Step::Dup { dest, slot }
                } else {
                    Step::Deliver { dest, slot }
                }
            }
        }
    }

    /// Resolves a [`Step`] back to an enabled choice, if it still denotes
    /// one (lenient replay drops steps that no longer apply — the shrink
    /// loop relies on that).
    pub fn choice_of(&self, step: Step) -> Option<Choice> {
        match step {
            Step::Gen { site } => {
                let prog = self.scenario.programs.get(site)?;
                (self.pcs.get(site).copied()? < prog.len()).then_some(Choice::Gen { site })
            }
            Step::Deliver { dest, slot } | Step::Dup { dest, slot } => {
                let dup = matches!(step, Step::Dup { .. });
                let f = self.net.inflight().iter().filter(|f| f.dest == dest).nth(slot)?;
                if dup && f.dups_left == 0 {
                    return None;
                }
                Some(Choice::Deliver { id: f.id, dest, dup })
            }
        }
    }

    /// Applies one choice, converting protocol errors and panics into
    /// counterexample material.
    pub fn apply(&mut self, c: Choice) -> Result<(), Violation> {
        match catch_unwind(AssertUnwindSafe(|| self.apply_inner(c))) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(Violation::ProtocolError { detail: e.to_string() }),
            Err(payload) => Err(Violation::Panic { detail: panic_text(payload) }),
        }
    }

    fn apply_inner(&mut self, c: Choice) -> Result<(), CoreError> {
        match c {
            Choice::Gen { site } => {
                let action = self.scenario.programs[site][self.pcs[site]].clone();
                self.pcs[site] += 1;
                match action {
                    LocalAction::Admin(op) => {
                        self.net.admin_generate(site, op)?;
                    }
                    coop => {
                        if let Some(op) = self.fold(site, &coop) {
                            match self.net.generate(site, op) {
                                // A local denial is a legitimate protocol
                                // outcome (Check_Local fails, nothing is
                                // executed or broadcast), not an error.
                                Ok(_) | Err(CoreError::AccessDenied { .. }) => {}
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
            }
            Choice::Deliver { id, dup, .. } => {
                if dup {
                    self.net.deliver_duplicate(id)?;
                } else {
                    self.net.deliver(id)?;
                }
            }
        }
        Ok(())
    }

    /// Folds a cooperative action intent into the acting site's current
    /// document (see the scenario module docs). `None` = the action
    /// degenerates to a no-op on this branch.
    fn fold(&self, site: usize, action: &LocalAction) -> Option<Op<Char>> {
        let doc = self.net.site(site).document();
        let len = doc.len();
        match action {
            LocalAction::Insert { pos, ch } => Some(Op::ins(1 + (pos - 1) % (len + 1), *ch)),
            LocalAction::Delete { pos } => {
                if len == 0 {
                    return None;
                }
                let p = 1 + (pos - 1) % len;
                Some(Op::del(p, *doc.get(p).expect("folded position is in range")))
            }
            LocalAction::Update { pos, ch } => {
                if len == 0 {
                    return None;
                }
                let p = 1 + (pos - 1) % len;
                Some(Op::up(p, *doc.get(p).expect("folded position is in range"), *ch))
            }
            LocalAction::Admin(_) => unreachable!("admin actions are not folded"),
        }
    }
}

pub(crate) fn hash_msg(msg: &dce_core::Message<Char>) -> u64 {
    let mut h = DefaultHasher::new();
    msg.hash(&mut h);
    h.finish()
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

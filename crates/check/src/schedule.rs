//! Replayable schedules: the counterexample currency.
//!
//! A [`Schedule`] is a sequence of [`Step`]s addressing deliveries by
//! `(destination, slot)` — the slot counts the destination's in-flight
//! messages in send order at the moment the step executes, which is
//! stable under replay (raw send identifiers are not: they depend on how
//! many broadcasts happened before).
//!
//! Replay is *lenient*: a step that no longer denotes an enabled
//! transition is skipped. After the last step the run is driven to
//! quiescence canonically (pending program actions in site order, then
//! deliveries in send order, no duplicates) and the oracles are checked.
//! Lenient-replay-then-drain gives every *subsequence* of a schedule a
//! well-defined verdict — exactly what greedy delta-debugging needs.

use crate::oracle::{check_quiescent, Violation};
use crate::runner::{Choice, Runner};
use crate::scenario::Scenario;
use std::fmt;
use std::sync::Arc;

/// One schedule step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Site `site` executes its next program action.
    Gen {
        /// The acting site.
        site: usize,
    },
    /// Deliver (and consume) the `slot`-th in-flight message addressed to
    /// `dest`, counting in send order.
    Deliver {
        /// Destination site.
        dest: usize,
        /// Rank among `dest`'s in-flight messages, in send order.
        slot: usize,
    },
    /// Deliver a duplicate copy of that message, keeping it in flight.
    Dup {
        /// Destination site.
        dest: usize,
        /// Rank among `dest`'s in-flight messages, in send order.
        slot: usize,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Gen { site } => write!(f, "gen@s{site}"),
            Step::Deliver { dest, slot } => write!(f, "deliver#{slot}->s{dest}"),
            Step::Dup { dest, slot } => write!(f, "dup#{slot}->s{dest}"),
        }
    }
}

/// A replayable delivery schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The steps, in execution order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Wraps a step sequence.
    pub fn new(steps: Vec<Step>) -> Schedule {
        Schedule { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the schedule has no steps (the canonical drain alone).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the schedule leniently against a fresh instance of
    /// `scenario`, drains to quiescence and checks every oracle. `None` =
    /// all properties hold. The regression-pinning entry point.
    pub fn check(&self, scenario: &Scenario) -> Option<Violation> {
        self.run(scenario).0
    }

    /// Lenient replay + canonical drain. Returns the verdict and the
    /// steps that actually executed (the shrink loop adopts those: steps
    /// that were skipped anyway can never be needed).
    pub(crate) fn run(&self, scenario: &Scenario) -> (Option<Violation>, Vec<Step>) {
        let mut runner = Runner::new(Arc::new(scenario.clone()));
        let mut executed = Vec::new();
        for step in &self.steps {
            let Some(choice) = runner.choice_of(*step) else { continue };
            if let Err(v) = runner.apply(choice) {
                executed.push(*step);
                return (Some(v), executed);
            }
            executed.push(*step);
        }
        if let Err(v) = drain(&mut runner, &mut executed) {
            return (Some(v), executed);
        }
        (check_quiescent(&runner), executed)
    }

    /// Lenient replay + canonical drain with observability attached to
    /// every site: events land in `obs`'s journal, and any violation is
    /// reported through `obs.failure(..)` *before* being returned — so
    /// an armed flight recorder (`dce_trace::arm`) dumps the shrunk
    /// counterexample's full trace the moment it reproduces.
    pub fn record(&self, scenario: &Scenario, obs: &dce_obs::ObsHandle) -> Option<Violation> {
        let mut runner = Runner::new(Arc::new(scenario.clone()));
        for i in 0..scenario.sites() {
            runner.net.site_mut(i).set_observability(obs.clone());
        }
        let mut executed = Vec::new();
        let verdict = (|| {
            for step in &self.steps {
                let Some(choice) = runner.choice_of(*step) else { continue };
                runner.apply(choice)?;
                executed.push(*step);
            }
            drain(&mut runner, &mut executed)?;
            match check_quiescent(&runner) {
                Some(v) => Err(v),
                None => Ok(()),
            }
        })();
        match verdict {
            Ok(()) => None,
            Err(v) => {
                obs.failure(&format!("schedule [{self}] violates: {v}"));
                Some(v)
            }
        }
    }

    /// The schedule as a Rust expression, for pinning a shrunk
    /// counterexample in `crates/check/tests/regressions.rs`.
    pub fn to_rust_literal(&self) -> String {
        let mut out = String::from("Schedule::new(vec![\n");
        for s in &self.steps {
            let line = match s {
                Step::Gen { site } => format!("    Step::Gen {{ site: {site} }},\n"),
                Step::Deliver { dest, slot } => {
                    format!("    Step::Deliver {{ dest: {dest}, slot: {slot} }},\n")
                }
                Step::Dup { dest, slot } => {
                    format!("    Step::Dup {{ dest: {dest}, slot: {slot} }},\n")
                }
            };
            out.push_str(&line);
        }
        out.push_str("])");
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Drives a runner to quiescence canonically: pending program actions in
/// site order first, then every delivery in send order, never duplicating.
/// Appends the drained steps to `executed`.
pub(crate) fn drain(runner: &mut Runner, executed: &mut Vec<Step>) -> Result<(), Violation> {
    loop {
        let next =
            runner.choices().into_iter().find(|c| !matches!(c, Choice::Deliver { dup: true, .. }));
        let Some(choice) = next else { break };
        executed.push(runner.step_of(choice));
        runner.apply(choice)?;
    }
    Ok(())
}

//! Command-line front end of the explorer.
//!
//! ```text
//! cargo run -p dce-check --release -- --scenario fig2 --sites 3 --ops 4
//! ```
//!
//! Exits 0 on `Verdict::Ok`, 1 with the shrunk counterexample (human
//! summary plus a `Schedule::new(vec![...])` Rust literal ready for
//! `crates/check/tests/regressions.rs`) on a violation, and 2 on usage
//! errors. On a violation the shrunk schedule is additionally replayed
//! with the flight recorder armed, leaving a replayable
//! `results/flight-<digest>.json` trace dump behind.

use dce_check::{explore_with, Config, Scenario, Verdict};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

const USAGE: &str = "usage: dce-check [options]
  --scenario <fig1|fig2|fig3|fig4|fig5>   scenario (default fig2)
  --sites <n>                             sites incl. administrator (default 3)
  --ops <k>                               cooperative operations (default 4)
  --dups <d>                              duplicate deliveries per message (default 0)
  --budget <n>                            distinct-state budget (default 1000000)
  --no-wire                               skip the wire-codec round-trip
  --no-determinism                        skip the replay-determinism oracle
  --flight-dir <dir>                      where violation trace dumps go (default results)";

struct Args {
    scenario: String,
    sites: usize,
    ops: usize,
    dups: u8,
    cfg: Config,
    wire: bool,
    flight_dir: String,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        scenario: "fig2".to_owned(),
        sites: 3,
        ops: 4,
        dups: 0,
        cfg: Config::default(),
        wire: true,
        flight_dir: "results".to_owned(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--scenario" => out.scenario = value("--scenario")?,
            "--sites" => out.sites = parse(&value("--sites")?)?,
            "--ops" => out.ops = parse(&value("--ops")?)?,
            "--dups" => out.dups = parse(&value("--dups")?)?,
            "--budget" => out.cfg.max_states = parse(&value("--budget")?)?,
            "--no-wire" => out.wire = false,
            "--no-determinism" => out.cfg.check_determinism = false,
            "--flight-dir" => out.flight_dir = value("--flight-dir")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number: {s}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some(mut scenario) = Scenario::by_name(&args.scenario, args.sites, args.ops) else {
        eprintln!("error: unknown scenario {:?} (or fewer than 2 sites)\n{USAGE}", args.scenario);
        std::process::exit(2);
    };
    scenario.max_dups = args.dups;
    scenario.wire_codec = args.wire;

    println!(
        "exploring {} — {} sites, {} ops, {} dup(s)/msg, wire codec {}",
        scenario.name,
        scenario.sites(),
        args.ops,
        args.dups,
        if scenario.wire_codec { "on" } else { "off" },
    );
    let start = Instant::now();
    let verdict = explore_with(&scenario, args.cfg);
    let elapsed = start.elapsed();

    let stats = verdict.stats();
    println!(
        "states {} | transitions {} | schedules {} | quiescent {} | dedupe {} | sleep-skips {} | depth {} | {}",
        stats.states,
        stats.transitions,
        stats.schedules,
        stats.quiescent,
        stats.dedupe_hits,
        stats.sleep_skips,
        stats.max_depth,
        if stats.complete { "complete" } else { "budget exhausted" },
    );
    println!("elapsed {elapsed:.2?}");

    match verdict {
        Verdict::Ok(_) => println!("verdict: Ok — every oracle held at every quiescent state"),
        Verdict::Violation(cx) => {
            println!("verdict: VIOLATION ({})", cx.violation.kind());
            println!("  {}", cx.violation);
            println!(
                "  schedule ({} steps, shrunk from {}): {}",
                cx.schedule.len(),
                cx.original.len(),
                cx.schedule,
            );
            println!(
                "pin in crates/check/tests/regressions.rs:\n{}",
                cx.schedule.to_rust_literal()
            );
            // Replay the shrunk schedule with the flight recorder armed:
            // the dump carries the full per-site trace of the violation.
            let mut h = DefaultHasher::new();
            (scenario.name.as_str(), &cx.schedule.steps).hash(&mut h);
            let digest = h.finish();
            let obs = dce_obs::ObsHandle::recording(1 << 16);
            dce_trace::arm(&obs, digest, &args.flight_dir);
            if cx.schedule.record(&scenario, &obs).is_none() {
                eprintln!("note: shrunk schedule did not reproduce under recording");
            }
            std::process::exit(1);
        }
    }
}

//! The exhaustive schedule-space explorer: iterative DFS over delivery
//! interleavings with sleep-set partial-order reduction and joined-state
//! dedupe.
//!
//! ## Pruning soundness (sketch; the full argument is in DESIGN.md §6)
//!
//! Two enabled transitions are *independent* when they target different
//! sites: each reads and writes only its target site's state plus appends
//! to the in-flight message multiset (which is unordered and hashed as a
//! multiset), so they commute; and since enabledness of a generate step
//! depends only on its site's program counter and enabledness of a
//! delivery only on its own flight, neither can disable the other. Under
//! that independence relation, classic sleep sets explore at least one
//! representative of every Mazurkiewicz trace — hence reach every
//! reachable state, in particular every quiescent state where the oracles
//! run. Joined states are deduped by behavioral digest; a visit is
//! skipped only when a previous visit covered it with a sleep set no
//! larger than the current one (`S_stored ⊆ S_now`), the standard sound
//! combination of sleep sets with state caching.

use crate::oracle::{check_quiescent, Violation};
use crate::runner::{EventKey, Runner};
use crate::scenario::Scenario;
use crate::schedule::{Schedule, Step};
use crate::shrink::shrink;
use std::collections::HashMap;
use std::sync::Arc;

/// Exploration limits and toggles.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Budget on *distinct* states expanded; exceeding it ends the run
    /// with `complete = false` instead of an error.
    pub max_states: u64,
    /// Re-run every quiescent state's schedule from scratch and require
    /// each site's state to reproduce bit for bit (oracle 4).
    pub check_determinism: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config { max_states: 1_000_000, check_determinism: true }
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states expanded (visited-set insertions).
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Maximal schedules explored: quiescent states reached plus paths
    /// ending in a dedupe hit or a fully slept frontier.
    pub schedules: u64,
    /// Quiescent states oracle-checked.
    pub quiescent: u64,
    /// Paths cut because the state was already covered.
    pub dedupe_hits: u64,
    /// Child expansions skipped by sleep sets.
    pub sleep_skips: u64,
    /// Longest schedule encountered.
    pub max_depth: usize,
    /// `true` when the whole bounded space was explored within budget.
    pub complete: bool,
}

/// A violation together with its evidence.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The property that failed (after shrinking — shrinking preserves
    /// the violation class, not necessarily the exact payload).
    pub violation: Violation,
    /// The delta-debugged schedule: replay with [`Schedule::check`] to
    /// reproduce.
    pub schedule: Schedule,
    /// The schedule as originally encountered, before shrinking.
    pub original: Schedule,
    /// Counters up to the moment of failure.
    pub stats: Stats,
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every oracle held at every quiescent state reached.
    Ok(Stats),
    /// Some property failed; here is the (shrunk) evidence.
    Violation(Box<Counterexample>),
}

impl Verdict {
    /// `true` for [`Verdict::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok(_))
    }

    /// The exploration counters, whatever the outcome.
    pub fn stats(&self) -> &Stats {
        match self {
            Verdict::Ok(s) => s,
            Verdict::Violation(cx) => &cx.stats,
        }
    }
}

/// Explores every delivery interleaving of `scenario` under the default
/// [`Config`]. See [`explore_with`].
pub fn explore(scenario: &Scenario) -> Verdict {
    explore_with(scenario, Config::default())
}

/// Explores every delivery interleaving of `scenario`, checking the
/// invariant oracles at every quiescent state, and shrinks the first
/// violation into a replayable counterexample.
pub fn explore_with(scenario: &Scenario, cfg: Config) -> Verdict {
    struct Node {
        runner: Runner,
        sleep: Vec<EventKey>,
        schedule: Vec<Step>,
    }

    let scenario_arc = Arc::new(scenario.clone());
    let mut stack = vec![Node {
        runner: Runner::new(Arc::clone(&scenario_arc)),
        sleep: Vec::new(),
        schedule: Vec::new(),
    }];
    let mut visited: HashMap<u64, Vec<Box<[EventKey]>>> = HashMap::new();
    let mut stats = Stats { complete: true, ..Stats::default() };

    while let Some(node) = stack.pop() {
        stats.max_depth = stats.max_depth.max(node.schedule.len());

        let digest = node.runner.digest();
        let covers = visited.entry(digest).or_default();
        if covers.iter().any(|s| s.iter().all(|k| node.sleep.contains(k))) {
            stats.dedupe_hits += 1;
            stats.schedules += 1;
            continue;
        }
        covers.push(node.sleep.iter().copied().collect());
        stats.states += 1;
        if stats.states >= cfg.max_states {
            stats.complete = false;
            break;
        }

        let choices = node.runner.choices();
        if choices.is_empty() {
            stats.quiescent += 1;
            stats.schedules += 1;
            if let Some(v) = check_quiescent(&node.runner) {
                return fail(scenario, v, node.schedule, stats);
            }
            if cfg.check_determinism {
                if let Some(v) =
                    determinism(&scenario_arc, &node.schedule, &node.runner, &mut stats)
                {
                    return fail(scenario, v, node.schedule, stats);
                }
            }
            continue;
        }

        let mut done: Vec<EventKey> = Vec::new();
        let mut expanded = false;
        for c in choices {
            let key = node.runner.key_of(c);
            if node.sleep.contains(&key) {
                stats.sleep_skips += 1;
                continue;
            }
            let mut schedule = node.schedule.clone();
            schedule.push(node.runner.step_of(c));
            let mut child = node.runner.clone();
            if let Err(v) = child.apply(c) {
                return fail(scenario, v, schedule, stats);
            }
            stats.transitions += 1;
            let sleep: Vec<EventKey> = node
                .sleep
                .iter()
                .chain(done.iter())
                .copied()
                .filter(|k| k.site != key.site)
                .collect();
            stack.push(Node { runner: child, sleep, schedule });
            done.push(key);
            expanded = true;
        }
        if !expanded {
            // Everything enabled is slept: this path's continuations are
            // explored from a sibling branch.
            stats.schedules += 1;
        }
    }

    Verdict::Ok(stats)
}

/// Oracle 4 — per-site determinism: strictly replaying the schedule that
/// reached this quiescent state must reproduce each site bit for bit.
fn determinism(
    scenario: &Arc<Scenario>,
    schedule: &[Step],
    reached: &Runner,
    stats: &mut Stats,
) -> Option<Violation> {
    let mut replay = Runner::new(Arc::clone(scenario));
    for step in schedule {
        let choice = replay.choice_of(*step)?;
        stats.transitions += 1;
        if replay.apply(choice).is_err() {
            // A step that replays into an error never got recorded on the
            // exploration side: the schedule itself failed to reproduce.
            return Some(Violation::ProtocolError {
                detail: format!("replaying step {step} failed"),
            });
        }
    }
    for (i, (a, b)) in reached.net.sites().iter().zip(replay.net.sites()).enumerate() {
        if a.state_digest() != b.state_digest() {
            return Some(Violation::Nondeterminism { site: i });
        }
    }
    None
}

fn fail(scenario: &Scenario, violation: Violation, steps: Vec<Step>, stats: Stats) -> Verdict {
    let original = Schedule::new(steps);
    let (schedule, violation) = shrink(scenario, &original, &violation);
    Verdict::Violation(Box::new(Counterexample { violation, schedule, original, stats }))
}

//! Greedy delta-debugging of counterexample schedules.
//!
//! Because replay is lenient and every replay ends with the canonical
//! drain plus a full oracle pass, *any* subsequence of a failing schedule
//! has a well-defined verdict. The shrinker exploits that: repeatedly try
//! dropping one step, keep the shorter schedule whenever it still fails
//! in the same [`Violation::kind`], and stop at a fixpoint (a 1-minimal
//! schedule: no single step can be removed).

use crate::oracle::Violation;
use crate::scenario::Scenario;
use crate::schedule::Schedule;

/// Shrinks `original` while preserving the violation class. Returns the
/// reduced schedule and the violation it reproduces. Falls back to the
/// input unchanged when the violation cannot be reproduced by replay —
/// notably [`Violation::Nondeterminism`], which by construction compares
/// a fork-explored state against its own replay and so has no
/// replay-only reproduction.
pub(crate) fn shrink(
    scenario: &Scenario,
    original: &Schedule,
    violation: &Violation,
) -> (Schedule, Violation) {
    if matches!(violation, Violation::Nondeterminism { .. }) {
        return (original.clone(), violation.clone());
    }
    let kind = violation.kind();
    let same_kind = |v: Option<Violation>| v.filter(|v| v.kind() == kind);

    // Re-establish the violation under plain replay (the explorer found it
    // mid-fork); adopt the steps that actually executed.
    let (v0, executed) = original.run(scenario);
    let Some(mut best) = same_kind(v0) else {
        return (original.clone(), violation.clone());
    };
    let mut steps = executed;

    loop {
        let mut improved = false;
        let mut i = 0;
        while i < steps.len() {
            let mut candidate = steps.clone();
            candidate.remove(i);
            let (v, executed) = Schedule::new(candidate).run(scenario);
            if let Some(v) = same_kind(v) {
                // Keep only the steps that executed: skipped steps can
                // never be load-bearing, so drop them in the same breath.
                steps = executed;
                best = v;
                improved = true;
                // `i` now addresses the next untried step — don't advance.
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    (Schedule::new(steps), best)
}

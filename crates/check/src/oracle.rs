//! Invariant oracles, evaluated at every quiescent state the explorer
//! reaches (and at the end of every replayed schedule).

use crate::runner::Runner;
use dce_core::{Flag, Site};
use dce_document::Char;
use dce_ot::RequestId;
use dce_policy::{Action, AdminOp};
use std::collections::HashMap;
use std::fmt;

/// A property violation — the payload of a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two sites disagree on a piece of replicated state at quiescence.
    Divergence {
        /// First site index.
        left: usize,
        /// Second site index.
        right: usize,
        /// Which component diverged, with both values.
        what: String,
    },
    /// A request flagged `Invalid` still has a document effect.
    InvalidEffect {
        /// The offending site.
        site: usize,
        /// The request.
        id: RequestId,
    },
    /// A request the final policy forbids — and that was never validated —
    /// still has a document effect (the §4.2 security property).
    SecurityLeak {
        /// The offending site.
        site: usize,
        /// The request.
        id: RequestId,
        /// The denied action and the flag the request ended with.
        detail: String,
    },
    /// A request the administrator validated did not end `Valid`
    /// everywhere (the Fig. 4 legality property).
    ValidationLost {
        /// The offending site.
        site: usize,
        /// The validated request.
        id: RequestId,
        /// The flag it actually holds there.
        flag: Option<Flag>,
    },
    /// Strictly replaying the schedule did not reproduce a site's state
    /// bit for bit.
    Nondeterminism {
        /// The site whose digest changed.
        site: usize,
    },
    /// A transition returned a protocol error the explorer considers
    /// impossible under correct operation.
    ProtocolError {
        /// The error text.
        detail: String,
    },
    /// A transition panicked.
    Panic {
        /// The panic message.
        detail: String,
    },
}

impl Violation {
    /// Coarse class of the violation — the shrink loop only keeps a
    /// reduction when the reduced schedule fails in the *same* class.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Divergence { .. } => "divergence",
            Violation::InvalidEffect { .. } => "invalid-effect",
            Violation::SecurityLeak { .. } => "security-leak",
            Violation::ValidationLost { .. } => "validation-lost",
            Violation::Nondeterminism { .. } => "nondeterminism",
            Violation::ProtocolError { .. } => "protocol-error",
            Violation::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Divergence { left, right, what } => {
                write!(f, "divergence between sites {left} and {right}: {what}")
            }
            Violation::InvalidEffect { site, id } => {
                write!(f, "invalid request {id} still has a document effect at site {site}")
            }
            Violation::SecurityLeak { site, id, detail } => {
                write!(f, "forbidden request {id} survives at site {site}: {detail}")
            }
            Violation::ValidationLost { site, id, flag } => {
                write!(f, "validated request {id} ended {flag:?} at site {site}")
            }
            Violation::Nondeterminism { site } => {
                write!(f, "replaying the schedule did not reproduce site {site}")
            }
            Violation::ProtocolError { detail } => write!(f, "protocol error: {detail}"),
            Violation::Panic { detail } => write!(f, "panic: {detail}"),
        }
    }
}

/// Runs every quiescent-state oracle. `None` = all properties hold.
pub(crate) fn check_quiescent(runner: &Runner) -> Option<Violation> {
    debug_assert!(runner.is_quiescent());
    let sites = runner.net.sites();
    convergence(sites).or_else(|| per_site(sites)).or_else(|| legality(sites))
}

/// Oracle 1 — convergence: documents, policies, administrative logs and
/// flag tables must be identical across sites. The explorer never
/// compacts, so full flag-table equality is required (the looser
/// common-id comparison of `SimNet::check_converged` is for GC runs).
fn convergence(sites: &[Site<Char>]) -> Option<Violation> {
    let diverged =
        |right: usize, what: String| Some(Violation::Divergence { left: 0, right, what });
    for (i, s) in sites.iter().enumerate().skip(1) {
        let (a, b) = (&sites[0], s);
        if a.document() != b.document() {
            return diverged(
                i,
                format!(
                    "document {:?} vs {:?}",
                    a.document().to_string(),
                    b.document().to_string()
                ),
            );
        }
        if a.version() != b.version() {
            return diverged(i, format!("policy version {} vs {}", a.version(), b.version()));
        }
        if a.policy() != b.policy() {
            return diverged(i, format!("policy {} vs {}", a.policy(), b.policy()));
        }
        if a.admin_log() != b.admin_log() {
            return diverged(
                i,
                format!("admin log {} vs {} entries", a.admin_log().len(), b.admin_log().len()),
            );
        }
        let fa: HashMap<RequestId, Flag> = a.flags().collect();
        let fb: HashMap<RequestId, Flag> = b.flags().collect();
        if fa != fb {
            return diverged(i, format!("flags {fa:?} vs {fb:?}"));
        }
    }
    None
}

/// Oracles 2 and 3 — per-site security: nothing `Invalid` has a document
/// effect, and no request the *final* policy forbids (and that the
/// administrator never validated) has one either.
fn per_site(sites: &[Site<Char>]) -> Option<Violation> {
    for (i, site) in sites.iter().enumerate() {
        let admin: dce_policy::UserId = 0;
        for entry in site.engine().log().iter() {
            let flag = site.flag_of(entry.id);
            if flag == Some(Flag::Invalid) && !entry.inert {
                return Some(Violation::InvalidEffect { site: i, id: entry.id });
            }
            let user = entry.id.site;
            if user == admin || flag == Some(Flag::Valid) {
                continue;
            }
            if let Some(action) = Action::for_op(&entry.base) {
                if !site.policy().check(user, &action).granted() && !entry.inert {
                    return Some(Violation::SecurityLeak {
                        site: i,
                        id: entry.id,
                        detail: format!("final policy denies {action}, flag {flag:?}"),
                    });
                }
            }
        }
    }
    None
}

/// Oracle 4 — legality (Fig. 4): every request the administrator
/// validated ends `Valid` at every site. At quiescence the administrative
/// logs agree (convergence runs first), so site 0's log lists every
/// validation ever issued.
fn legality(sites: &[Site<Char>]) -> Option<Violation> {
    for r in sites[0].admin_log().iter() {
        if let AdminOp::Validate { site, seq } = r.op {
            let id = RequestId::new(site, seq);
            for (i, s) in sites.iter().enumerate() {
                let flag = s.flag_of(id);
                if flag != Some(Flag::Valid) {
                    return Some(Violation::ValidationLost { site: i, id, flag });
                }
            }
        }
    }
    None
}

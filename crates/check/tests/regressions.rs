//! Pinned counterexample schedules.
//!
//! When the explorer finds a violation it prints a shrunk, replayable
//! schedule as a `Schedule::new(vec![...])` literal. Pin it here with a
//! test asserting `schedule.check(&scenario).is_none()` once the bug is
//! fixed — the schedule then guards against regression forever, at the
//! cost of one replay instead of a whole exploration.
//!
//! No exploration of the bounded figure scenarios has produced a
//! violation so far, so the only tests here exercise the replay
//! machinery itself (the pattern a real pin would follow).

use dce_check::{Scenario, Schedule, Step};

/// The canonical drain alone (the empty schedule) must satisfy every
/// oracle: generate everything in site order, deliver everything in send
/// order.
#[test]
fn empty_schedule_is_clean_on_every_figure() {
    for name in ["fig1", "fig2", "fig3", "fig4", "fig5"] {
        let scenario = Scenario::by_name(name, 3, 2).unwrap();
        assert_eq!(Schedule::new(Vec::new()).check(&scenario), None, "{name}");
    }
}

/// A hand-written racy prefix — user inserts delivered to the admin
/// before the revocation goes out, plus steps that are no longer
/// applicable and must be skipped leniently — still ends clean.
#[test]
fn lenient_replay_of_a_racy_prefix_is_clean() {
    let scenario = Scenario::by_name("fig2", 3, 2).unwrap();
    let schedule = Schedule::new(vec![
        Step::Gen { site: 1 },
        Step::Gen { site: 2 },
        Step::Deliver { dest: 0, slot: 1 },
        Step::Deliver { dest: 0, slot: 0 },
        Step::Gen { site: 0 },
        Step::Dup { dest: 2, slot: 0 }, // inapplicable (dups disabled): skipped
        Step::Deliver { dest: 9, slot: 0 }, // no such site: skipped
        Step::Deliver { dest: 1, slot: 0 },
    ]);
    assert_eq!(schedule.check(&scenario), None);
}

/// `Schedule::record` replays with observability attached: the journal
/// carries the whole run, the verdict matches `check`, and a clean run
/// never trips an armed failure hook.
#[test]
fn recorded_replay_journals_the_run() {
    let scenario = Scenario::by_name("fig2", 3, 2).unwrap();
    let schedule = Schedule::new(vec![Step::Gen { site: 1 }, Step::Gen { site: 0 }]);
    let obs = dce_obs::ObsHandle::recording(1 << 12);
    let fired = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let fired2 = fired.clone();
    obs.set_failure_hook(Box::new(move |_, _, _| {
        fired2.store(true, std::sync::atomic::Ordering::SeqCst);
    }));
    assert_eq!(schedule.record(&scenario, &obs), None);
    assert!(!fired.load(std::sync::atomic::Ordering::SeqCst), "clean run, hook must not fire");

    let events = obs.events();
    assert!(!events.is_empty(), "the replay journals protocol events");
    let s = dce_obs::summarize(&events);
    assert!(s.total("req_generated") >= 1, "{events:?}");
    // The recorded journal merges into a cycle-free causal DAG.
    let trace = dce_trace::merge_events(&events);
    assert!(trace.is_acyclic());
    assert!(trace.warnings.is_empty(), "{:?}", trace.warnings);
}

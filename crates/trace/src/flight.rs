//! The failure flight recorder.
//!
//! [`arm`] installs a `dce-obs` failure hook that, when an oracle calls
//! `ObsHandle::failure` (convergence assertion, ledger conservation,
//! dce-check invariant, trace oracle), writes the full evidence to
//! `results/flight-<seed>.json`: the failure reason, the merged trace's
//! shape and warnings, the complete journal (replayable — the dump
//! round-trips through [`read_flight`]), the rendered span tree, and
//! the metrics snapshot at the moment of death. The recorder is cheap
//! while armed — the hook is one `Option` behind a mutex, touched only
//! on failure — so it can stay always-on in tests and chaos suites.

use crate::json::{self, Value};
use crate::merge::merge_events;
use crate::render;
use crate::span::build_spans;
use dce_obs::{Event, MetricsReport, ObsHandle};
use std::io;
use std::path::{Path, PathBuf};

/// A parsed flight dump: everything needed to re-merge and re-render
/// the failed run's trace offline.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The failed run's seed.
    pub seed: u64,
    /// The oracle's failure message.
    pub reason: String,
    /// The journal at the moment of failure.
    pub events: Vec<Event>,
}

/// Where [`arm`] writes the dump for `seed`.
pub fn flight_path(dir: &Path, seed: u64) -> PathBuf {
    dir.join(format!("flight-{seed}.json"))
}

/// Arms the flight recorder: on the next `obs.failure(..)`, a dump for
/// `seed` lands in `dir` (created on demand). Errors while dumping are
/// reported to stderr, never panicked — the process is already dying of
/// something more interesting.
pub fn arm(obs: &ObsHandle, seed: u64, dir: impl Into<PathBuf>) {
    let dir = dir.into();
    obs.set_failure_hook(Box::new(move |reason, events, report| {
        match write_flight(&dir, seed, reason, events, report) {
            Ok(path) => eprintln!("flight recorder: wrote {}", path.display()),
            Err(e) => eprintln!("flight recorder: could not write dump: {e}"),
        }
    }));
}

/// Writes one flight dump and returns its path.
pub fn write_flight(
    dir: &Path,
    seed: u64,
    reason: &str,
    events: &[Event],
    report: &MetricsReport,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = flight_path(dir, seed);
    let trace = merge_events(events);
    let spans = build_spans(&trace);
    let warnings: Vec<String> =
        trace.warnings.iter().map(|w| format!("    {}", json::quote(w))).collect();
    let body = format!(
        "{{\n  \"seed\": {seed},\n  \"reason\": {reason},\n  \"summary\": {summary},\n  \
         \"acyclic\": {acyclic},\n  \"warnings\": [{warnings}],\n  \
         \"span_tree\": {span_tree},\n  \"events\": {events},\n  \"report\": {report}}}\n",
        reason = json::quote(reason),
        summary = json::quote(&trace.summary()),
        acyclic = trace.is_acyclic(),
        warnings = if warnings.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", warnings.join(",\n"))
        },
        span_tree = json::quote(&render::span_tree(&spans)),
        events = json::events_to_json(events),
        report = report.to_json().trim_end(),
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Reads a dump back. The `events` array is decoded fully; the rendered
/// sections are ignored (they can be regenerated from the events).
pub fn read_flight(path: &Path) -> Result<FlightDump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let root = json::parse(&text)?;
    let seed = root.get("seed").and_then(Value::as_u64).ok_or("missing \"seed\"")?;
    let reason =
        root.get("reason").and_then(Value::as_str).ok_or("missing \"reason\"")?.to_string();
    let events = root
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("missing \"events\"")?
        .iter()
        .map(json::event_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FlightDump { seed, reason, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_obs::{EventKind, ReqId};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dce-trace-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn armed_handle_dumps_on_failure() {
        let dir = scratch_dir("arm");
        let obs = ObsHandle::recording(64);
        obs.use_sim_time();
        obs.set_now(5);
        obs.emit(1, 0, EventKind::ReqGenerated { id: ReqId::new(1, 1) });
        obs.emit(0, 0, EventKind::ReqReceived { id: ReqId::new(1, 1) });
        arm(&obs, 0xDEAD, &dir);
        assert!(obs.failure("site 0 and site 1 diverged"));

        let dump = read_flight(&flight_path(&dir, 0xDEAD)).unwrap();
        assert_eq!(dump.seed, 0xDEAD);
        assert_eq!(dump.reason, "site 0 and site 1 diverged");
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].at, 5, "time stamps survive the round trip");

        // The dump's journal re-merges into the same DAG shape.
        let trace = merge_events(&dump.events);
        assert!(trace.is_acyclic());
        assert_eq!(trace.events.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_survives_awkward_reasons_and_empty_journals() {
        let dir = scratch_dir("awkward");
        let reason = "diverged:\n\tsite 0 = \"abc\" \\ site 1 = \"abd\"";
        let path = write_flight(&dir, 7, reason, &[], &MetricsReport::default()).unwrap();
        let dump = read_flight(&path).unwrap();
        assert_eq!(dump.reason, reason);
        assert!(dump.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unarmed_failure_reports_false() {
        let obs = ObsHandle::recording(8);
        assert!(!obs.failure("nothing armed"));
    }
}

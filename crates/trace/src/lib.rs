//! `dce-trace` — cross-site causal trace correlation for the
//! collaborative-editing stack.
//!
//! `dce-obs` gives every site a journal of typed events; this crate
//! turns those journals into explanations:
//!
//! * [`merge`] reconstructs the global **happens-before DAG** from
//!   per-site journals — program order plus cross-site delivery,
//!   validation and administrative edges, keyed by request identity,
//!   with lamport stamps kept aside as an independent cross-check;
//! * [`span`] rolls the DAG up into **request spans** (one root per
//!   cooperative request, one child per remote site) and derives
//!   latency metrics — convergence lag, defer-queue residency,
//!   validation round trip, retransmit amplification — back into a
//!   `dce-obs` metrics registry;
//! * [`flight`] is the **failure flight recorder**: armed on an
//!   `ObsHandle`, it dumps the merged trace, span report and metrics
//!   snapshot to `results/flight-<seed>.json` the moment an oracle
//!   reports divergence, so failed chaos runs leave replayable
//!   evidence behind;
//! * [`render`] draws span trees and per-site swimlanes as text or
//!   SVG; [`json`] is the hand-rolled serialization layer under the
//!   dumps (the vendored serde stub is inert).
//!
//! Like `dce-obs`, this crate depends on nothing above it in the
//! stack — it consumes `Event`s and can therefore post-mortem any
//! runner: the simulated network, the threaded runner, or dce-check's
//! schedule explorer.

pub mod flight;
pub mod json;
pub mod merge;
pub mod render;
pub mod span;

pub use flight::{arm, flight_path, read_flight, write_flight, FlightDump};
pub use merge::{merge_events, merge_journals, Edge, EdgeKind, MergedTrace};
pub use span::{build_spans, publish, Moment, Outcome, RemoteSpan, RequestSpan, SpanReport};

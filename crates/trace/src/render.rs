//! Text and SVG rendering: span trees, per-site swimlanes.
//!
//! All output is deterministic (sorted request / site order), so bin
//! output can be diffed and tests can pin excerpts. Times render as
//! `+N` deltas against the span's generation in whatever unit the run's
//! time source used (simulated-net ms or wall ns); when no time source
//! was installed, lamport stamps stand in.

use crate::merge::{EdgeKind, MergedTrace};
use crate::span::{Moment, RemoteSpan, RequestSpan, SpanReport};
use dce_obs::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether any moment in the report carries a real timestamp; when not,
/// renderers fall back to lamport stamps.
fn has_time(report: &SpanReport) -> bool {
    report.spans.iter().any(|s| {
        s.generated.is_some_and(|m| m.at > 0)
            || s.remotes.iter().any(|r| r.received.is_some_and(|m| m.at > 0))
    })
}

fn stamp(m: Moment, use_at: bool) -> u64 {
    if use_at {
        m.at
    } else {
        m.lamport
    }
}

fn delta(m: Moment, base: Option<Moment>, use_at: bool) -> String {
    match base {
        Some(b) => format!("+{}", stamp(m, use_at).saturating_sub(stamp(b, use_at))),
        None => format!("t={}", stamp(m, use_at)),
    }
}

/// Renders every request span as a tree: the root line carries the
/// origin-side milestones, one child line per remote site.
pub fn span_tree(report: &SpanReport) -> String {
    let use_at = has_time(report);
    let mut out = format!(
        "span tree · {} request(s) · times are {} deltas from generation\n",
        report.spans.len(),
        if use_at { "time-source" } else { "lamport" }
    );
    for s in &report.spans {
        out.push('\n');
        out.push_str(&root_line(s, use_at));
        out.push('\n');
        for (i, r) in s.remotes.iter().enumerate() {
            let tee = if i + 1 == s.remotes.len() { "└─" } else { "├─" };
            let _ = writeln!(out, "{tee} {}", remote_line(r, s.generated, use_at));
        }
    }
    out
}

fn root_line(s: &RequestSpan, use_at: bool) -> String {
    let mut line = format!("{} · origin site {}", s.id, s.id.site);
    if s.doc != 0 {
        let _ = write!(line, " · doc{}", s.doc);
    }
    match s.generated {
        Some(g) => {
            let _ = write!(line, " · generated v{} t={}", s.origin_version, stamp(g, use_at));
        }
        None => line.push_str(" · generation missing from journals"),
    }
    if let Some((version, m)) = s.validation {
        let _ = write!(line, " · validated as v{version} {}", delta(m, s.generated, use_at));
    }
    if let Some(m) = s.validated_at_origin {
        let _ = write!(line, " · origin consumed {}", delta(m, s.generated, use_at));
    }
    if let Some(m) = s.undone_at_origin {
        let _ = write!(line, " · undone {}", delta(m, s.generated, use_at));
    }
    if s.retransmits > 0 {
        let _ = write!(line, " · {} retransmit(s)", s.retransmits);
    }
    if s.stable_at_origin.is_some() {
        line.push_str(" · stable");
    }
    line
}

fn remote_line(r: &RemoteSpan, base: Option<Moment>, use_at: bool) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(m) = r.received {
        parts.push(format!("received {}", delta(m, base, use_at)));
    }
    if let Some((reason, m)) = r.deferred {
        parts.push(format!("deferred {} ({reason})", delta(m, base, use_at)));
    }
    if let Some((outcome, m)) = r.outcome {
        parts.push(format!("{} {}", outcome.label(), delta(m, base, use_at)));
    }
    if let Some(m) = r.validated {
        parts.push(format!("validated {}", delta(m, base, use_at)));
    }
    if let Some(m) = r.undone {
        parts.push(format!("undone {}", delta(m, base, use_at)));
    }
    if r.duplicates > 0 {
        parts.push(format!("{} duplicate(s)", r.duplicates));
    }
    if r.stable.is_some() {
        parts.push("stable".to_string());
    }
    if parts.is_empty() {
        parts.push("(no protocol events)".to_string());
    }
    format!("site {}: {}", r.site, parts.join(" · "))
}

/// Renders the journal as a per-site swimlane: one column per site,
/// one row per event in lamport order.
pub fn swimlane(events: &[Event]) -> String {
    const COL: usize = 26;
    let mut sites: Vec<u32> = {
        let set: std::collections::BTreeSet<u32> = events.iter().map(|e| e.site).collect();
        set.into_iter().collect()
    };
    if sites.is_empty() {
        sites.push(0);
    }
    let col_of: BTreeMap<u32, usize> = sites.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.lamport, e.site, e.seq));

    let mut out = format!("{:>8} ", "lamport");
    for s in &sites {
        let _ = write!(out, "│ {:<width$}", format!("site {s}"), width = COL);
    }
    out.push('\n');
    let _ = write!(out, "{:->8}-", "");
    for _ in &sites {
        let _ = write!(out, "┼-{:-<width$}", "", width = COL);
    }
    out.push('\n');
    for ev in sorted {
        let _ = write!(out, "{:>8} ", ev.lamport);
        let col = col_of[&ev.site];
        for (i, _) in sites.iter().enumerate() {
            if i == col {
                let mut text = ev.kind.to_string();
                if text.len() > COL {
                    text.truncate(COL - 1);
                    text.push('…');
                }
                let _ = write!(out, "│ {text:<COL$}");
            } else {
                let _ = write!(out, "│ {:<COL$}", "");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the merged trace as an SVG swimlane: one horizontal lane per
/// site, a dot per event (colored by family), and a line per cross-site
/// happens-before edge. X is the installed time source when present,
/// lamport otherwise.
pub fn svg(trace: &MergedTrace) -> String {
    const WIDTH: f64 = 1160.0;
    const LANE_H: f64 = 56.0;
    const LEFT: f64 = 90.0;
    const TOP: f64 = 30.0;
    const R: f64 = 4.0;

    let sites = trace.sites();
    let use_at = trace.events.iter().any(|e| e.at > 0);
    let t = |e: &Event| if use_at { e.at } else { e.lamport };
    let tmin = trace.events.iter().map(t).min().unwrap_or(0);
    let tmax = trace.events.iter().map(t).max().unwrap_or(0).max(tmin + 1);
    let scale = (WIDTH - LEFT - 30.0) / (tmax - tmin) as f64;
    let lane_y: BTreeMap<u32, f64> =
        sites.iter().enumerate().map(|(i, &s)| (s, TOP + LANE_H * (i as f64 + 0.5))).collect();
    let height = TOP * 2.0 + LANE_H * sites.len().max(1) as f64;

    let x_of = |e: &Event| LEFT + (t(e) - tmin) as f64 * scale;
    let color = |e: &Event| match e.kind.name() {
        n if n.starts_with("req_") || n == "check_local_denied" => "#4c78a8",
        n if n.starts_with("admin_") => "#f58518",
        n if n.starts_with("validation_") => "#54a24b",
        _ => "#e45756",
    };

    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    );
    let _ = writeln!(
        out,
        "<text x=\"8\" y=\"16\" fill=\"#333\">{} · x = {}</text>",
        xml_escape(&trace.summary()),
        if use_at { "time source" } else { "lamport" }
    );
    for (&site, &y) in &lane_y {
        let _ = writeln!(
            out,
            "<line x1=\"{LEFT}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>\
             <text x=\"8\" y=\"{}\" fill=\"#333\">site {site}</text>",
            WIDTH - 20.0,
            y + 4.0
        );
    }
    // Cross-site edges under the dots.
    for e in &trace.edges {
        if e.kind == EdgeKind::Program {
            continue;
        }
        let (a, b) = (&trace.events[e.from], &trace.events[e.to]);
        let stroke = match e.kind {
            EdgeKind::Delivery => "#4c78a8",
            EdgeKind::Validation => "#54a24b",
            _ => "#f58518",
        };
        let _ = writeln!(
            out,
            "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
             stroke=\"{stroke}\" stroke-opacity=\"0.35\"/>",
            x_of(a),
            lane_y[&a.site],
            x_of(b),
            lane_y[&b.site]
        );
    }
    for ev in &trace.events {
        let _ = writeln!(
            out,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{R}\" fill=\"{}\">\
             <title>{}</title></circle>",
            x_of(ev),
            lane_y[&ev.site],
            color(ev),
            xml_escape(&ev.to_string())
        );
    }
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_events;
    use crate::span::build_spans;
    use dce_obs::{DeferReason, EventKind, ReqId};

    fn ev(site: u32, seq: u64, at: u64, kind: EventKind) -> Event {
        Event { site, doc: 0, seq, version: 0, lamport: at, at, kind }
    }

    fn journal() -> Vec<Event> {
        let id = ReqId::new(1, 1);
        vec![
            ev(1, 1, 10, EventKind::ReqGenerated { id }),
            ev(0, 1, 14, EventKind::ReqReceived { id }),
            ev(0, 2, 14, EventKind::ReqExecuted { id }),
            ev(2, 1, 18, EventKind::ReqDeferred { id, reason: DeferReason::MissingVersion(1) }),
            ev(2, 2, 25, EventKind::ReqExecuted { id }),
        ]
    }

    #[test]
    fn span_tree_shows_the_lifecycle() {
        let tree = span_tree(&build_spans(&merge_events(&journal())));
        assert!(tree.contains("1#1 · origin site 1 · generated v0 t=10"), "{tree}");
        assert!(tree.contains("├─ site 0: received +4 · executed +4"), "{tree}");
        assert!(
            tree.contains("└─ site 2: deferred +8 (awaiting policy v1) · executed +15"),
            "{tree}"
        );
    }

    #[test]
    fn lamport_fallback_without_time_source() {
        let mut j = journal();
        for e in &mut j {
            e.at = 0;
        }
        let tree = span_tree(&build_spans(&merge_events(&j)));
        assert!(tree.contains("lamport deltas"), "{tree}");
        assert!(tree.contains("generated v0 t=10"), "lamport stamp stands in: {tree}");
    }

    #[test]
    fn swimlane_has_one_column_per_site() {
        let lane = swimlane(&journal());
        let header = lane.lines().next().unwrap();
        assert!(
            header.contains("site 0") && header.contains("site 1") && header.contains("site 2")
        );
        assert!(lane.contains("generated 1#1"), "{lane}");
        assert!(swimlane(&[]).contains("lamport"), "empty journal still renders a header");
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let t = merge_events(&journal());
        let img = svg(&t);
        assert!(img.starts_with("<svg"));
        assert!(img.ends_with("</svg>\n"));
        assert_eq!(img.matches("<circle").count(), 5);
        assert!(img.contains("site 2"));
        assert!(svg(&merge_events(&[])).contains("</svg>"), "empty trace renders");
    }
}

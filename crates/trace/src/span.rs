//! Span-based latency attribution over a merged trace.
//!
//! Every cooperative request becomes one [`RequestSpan`] — a root
//! anchored at its generation, a validation annotation from the
//! administrator's handshake, and one [`RemoteSpan`] child per other
//! site tracking the request's life there: reception, optional deferral
//! (and why), the outcome (executed / inert / denied), optional
//! retroactive undo, and stability (compaction). Each phase keeps the
//! [`Moment`] it happened — lamport stamp plus the `at` timestamp, so
//! latencies come out in simulated-net milliseconds or wall-clock
//! nanoseconds depending on which time source the run installed.
//!
//! [`publish`] folds the spans into derived metrics in a `dce-obs`
//! registry: `trace.convergence_lag`, `trace.defer_residency`,
//! `trace.validation_rtt` and `trace.retransmit_amplification`
//! histograms, plus summary gauges.

use crate::merge::MergedTrace;
use dce_obs::{DeferReason, EventKind, ObsHandle, ReqId, SiteId};
use std::collections::BTreeMap;

/// When something happened: the event's lamport stamp and its `at`
/// timestamp (0 when the run installed no time source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Moment {
    /// Process-wide logical stamp.
    pub lamport: u64,
    /// Installed-time-source stamp (sim ms / wall ns / 0).
    pub at: u64,
}

/// How a request ended at a remote site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Integrated with document effect.
    Executed,
    /// Integrated without effect (an ancestor was inert there).
    Inert,
    /// Rejected by `Check_Remote` against the administrative log.
    Denied,
}

impl Outcome {
    /// Lower-case label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Executed => "executed",
            Outcome::Inert => "inert",
            Outcome::Denied => "denied",
        }
    }
}

/// A request's life at one site other than its origin.
#[derive(Debug, Clone)]
pub struct RemoteSpan {
    /// The observing site.
    pub site: SiteId,
    /// Admission into the reception queue.
    pub received: Option<Moment>,
    /// Parked instead of processed, and why.
    pub deferred: Option<(DeferReason, Moment)>,
    /// How (and when) integration settled.
    pub outcome: Option<(Outcome, Moment)>,
    /// Validation consumption here (promotes a tentative copy).
    pub validated: Option<Moment>,
    /// Retroactive enforcement undid it here.
    pub undone: Option<Moment>,
    /// Compaction reclaimed it here (fully stable).
    pub stable: Option<Moment>,
    /// Duplicate copies the reception queue absorbed.
    pub duplicates: u64,
}

impl RemoteSpan {
    fn new(site: SiteId) -> Self {
        RemoteSpan {
            site,
            received: None,
            deferred: None,
            outcome: None,
            validated: None,
            undone: None,
            stable: None,
            duplicates: 0,
        }
    }
}

/// The root span of one cooperative request.
#[derive(Debug, Clone)]
pub struct RequestSpan {
    /// The request.
    pub id: ReqId,
    /// Document the request belongs to (0 = the single-document
    /// default), taken from the first event that mentions the request.
    pub doc: u64,
    /// Generation at the origin site (`None` when that journal entry was
    /// evicted — the span is then partial but still useful).
    pub generated: Option<Moment>,
    /// Policy version at the origin when generated.
    pub origin_version: u64,
    /// The administrator's validation: `(version, issue moment)`.
    pub validation: Option<(u64, Moment)>,
    /// When the *origin* site consumed the validation — closing the
    /// validation round trip.
    pub validated_at_origin: Option<Moment>,
    /// Undone at the origin by retroactive enforcement.
    pub undone_at_origin: Option<Moment>,
    /// Compacted at the origin.
    pub stable_at_origin: Option<Moment>,
    /// Per-remote-site child spans, ascending site id.
    pub remotes: Vec<RemoteSpan>,
    /// Transport retransmissions that carried this request.
    pub retransmits: u64,
}

impl RequestSpan {
    fn new(id: ReqId) -> Self {
        RequestSpan {
            id,
            doc: 0,
            generated: None,
            origin_version: 0,
            validation: None,
            validated_at_origin: None,
            undone_at_origin: None,
            stable_at_origin: None,
            remotes: Vec::new(),
            retransmits: 0,
        }
    }

    fn remote_mut(&mut self, site: SiteId) -> &mut RemoteSpan {
        let pos = match self.remotes.binary_search_by_key(&site, |r| r.site) {
            Ok(p) => p,
            Err(p) => {
                self.remotes.insert(p, RemoteSpan::new(site));
                p
            }
        };
        &mut self.remotes[pos]
    }

    /// `at`-clock delay from generation until the *last* remote site
    /// settled an outcome — the request's convergence lag. `None` until
    /// every remote that heard of the request settled it, or when no
    /// time source stamped the run.
    pub fn convergence_lag(&self) -> Option<u64> {
        let gen = self.generated?;
        if self.remotes.is_empty() {
            return None;
        }
        let mut last = 0u64;
        for r in &self.remotes {
            let (_, m) = r.outcome?;
            last = last.max(m.at);
        }
        Some(last.saturating_sub(gen.at))
    }

    /// `at`-clock delay from generation to the origin consuming its own
    /// request's validation — the validation round trip.
    pub fn validation_rtt(&self) -> Option<u64> {
        Some(self.validated_at_origin?.at.saturating_sub(self.generated?.at))
    }

    /// Whether the request settled (validated or undone) everywhere it
    /// was seen.
    pub fn settled_everywhere(&self) -> bool {
        self.remotes.iter().all(|r| r.outcome.is_some())
    }
}

/// All request spans of a trace, ascending request id.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// One span per request mentioned anywhere in the trace.
    pub spans: Vec<RequestSpan>,
}

impl SpanReport {
    /// Looks up one request's span.
    pub fn span(&self, id: ReqId) -> Option<&RequestSpan> {
        self.spans.iter().find(|s| s.id == id)
    }
}

/// Builds the span report from a merged trace. Total: every request
/// mentioned by any event gets a span, however partial the journals.
pub fn build_spans(trace: &MergedTrace) -> SpanReport {
    fn span(spans: &mut BTreeMap<ReqId, RequestSpan>, id: ReqId) -> &mut RequestSpan {
        spans.entry(id).or_insert_with(|| RequestSpan::new(id))
    }
    let mut spans: BTreeMap<ReqId, RequestSpan> = BTreeMap::new();
    for ev in &trace.events {
        let m = Moment { lamport: ev.lamport, at: ev.at };
        if ev.doc != 0 {
            if let Some(id) = ev.kind.req_id() {
                let s = span(&mut spans, id);
                if s.doc == 0 {
                    s.doc = ev.doc;
                }
            }
        }
        match ev.kind {
            EventKind::ReqGenerated { id } => {
                let s = span(&mut spans, id);
                s.generated.get_or_insert(m);
                s.origin_version = ev.version;
            }
            EventKind::ReqReceived { id } if ev.site != id.site => {
                span(&mut spans, id).remote_mut(ev.site).received.get_or_insert(m);
            }
            EventKind::ReqDuplicate { id } if ev.site != id.site => {
                span(&mut spans, id).remote_mut(ev.site).duplicates += 1;
            }
            EventKind::ReqDeferred { id, reason } if ev.site != id.site => {
                let r = span(&mut spans, id).remote_mut(ev.site);
                if r.deferred.is_none() {
                    r.deferred = Some((reason, m));
                }
            }
            EventKind::ReqExecuted { id } if ev.site != id.site => {
                span(&mut spans, id)
                    .remote_mut(ev.site)
                    .outcome
                    .get_or_insert((Outcome::Executed, m));
            }
            EventKind::ReqInert { id } if ev.site != id.site => {
                span(&mut spans, id).remote_mut(ev.site).outcome.get_or_insert((Outcome::Inert, m));
            }
            EventKind::ReqDenied { id } if ev.site != id.site => {
                span(&mut spans, id)
                    .remote_mut(ev.site)
                    .outcome
                    .get_or_insert((Outcome::Denied, m));
            }
            EventKind::ReqUndone { id } => {
                if ev.site == id.site {
                    span(&mut spans, id).undone_at_origin.get_or_insert(m);
                } else {
                    span(&mut spans, id).remote_mut(ev.site).undone.get_or_insert(m);
                }
            }
            EventKind::ReqStable { id } => {
                if ev.site == id.site {
                    span(&mut spans, id).stable_at_origin.get_or_insert(m);
                } else {
                    span(&mut spans, id).remote_mut(ev.site).stable.get_or_insert(m);
                }
            }
            EventKind::ValidationIssued { id, version } => {
                span(&mut spans, id).validation.get_or_insert((version, m));
            }
            EventKind::ValidationConsumed { id, .. } => {
                if ev.site == id.site {
                    span(&mut spans, id).validated_at_origin.get_or_insert(m);
                } else {
                    span(&mut spans, id).remote_mut(ev.site).validated.get_or_insert(m);
                }
            }
            EventKind::StreamRetransmit { req: Some(id), .. } => {
                span(&mut spans, id).retransmits += 1;
            }
            _ => {}
        }
    }
    SpanReport { spans: spans.into_values().collect() }
}

/// Publishes the span report's derived metrics into `obs`:
///
/// * `trace.convergence_lag` — histogram of per-request lag from
///   generation to the last remote outcome;
/// * `trace.defer_residency` — histogram of time each deferred copy
///   spent parked before settling;
/// * `trace.validation_rtt` — histogram of generation → origin's
///   validation consumption;
/// * `trace.retransmit_amplification` — histogram of retransmissions
///   carrying each request;
/// * gauges `trace.requests`, `trace.requests_settled`,
///   `trace.requests_undone`, `trace.requests_stable`.
pub fn publish(report: &SpanReport, obs: &ObsHandle) {
    let mut settled = 0u64;
    let mut undone = 0u64;
    let mut stable = 0u64;
    for s in &report.spans {
        if let Some(lag) = s.convergence_lag() {
            obs.observe_hist("trace.convergence_lag", lag);
        }
        if let Some(rtt) = s.validation_rtt() {
            obs.observe_hist("trace.validation_rtt", rtt);
        }
        obs.observe_hist("trace.retransmit_amplification", s.retransmits);
        for r in &s.remotes {
            if let (Some((_, parked)), Some((_, out))) = (r.deferred, r.outcome) {
                obs.observe_hist("trace.defer_residency", out.at.saturating_sub(parked.at));
            }
        }
        if s.settled_everywhere() {
            settled += 1;
        }
        if s.undone_at_origin.is_some() || s.remotes.iter().any(|r| r.undone.is_some()) {
            undone += 1;
        }
        if s.stable_at_origin.is_some() {
            stable += 1;
        }
    }
    obs.set_gauge("trace.requests", report.spans.len() as u64);
    obs.set_gauge("trace.requests_settled", settled);
    obs.set_gauge("trace.requests_undone", undone);
    obs.set_gauge("trace.requests_stable", stable);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_events;
    use dce_obs::Event;

    fn ev(site: u32, seq: u64, at: u64, kind: EventKind) -> Event {
        Event { site, doc: 0, seq, version: 0, lamport: at, at, kind }
    }

    fn rid(site: u32, seq: u64) -> ReqId {
        ReqId::new(site, seq)
    }

    fn lifecycle_journal() -> Vec<Event> {
        vec![
            ev(1, 1, 10, EventKind::ReqGenerated { id: rid(1, 1) }),
            ev(1, 2, 10, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(0, 1, 14, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(0, 2, 14, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(0, 3, 15, EventKind::ValidationIssued { id: rid(1, 1), version: 1 }),
            ev(0, 4, 15, EventKind::ValidationConsumed { id: rid(1, 1), version: 1 }),
            ev(2, 1, 18, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(
                2,
                2,
                18,
                EventKind::ReqDeferred { id: rid(1, 1), reason: DeferReason::MissingVersion(1) },
            ),
            ev(2, 3, 25, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(1, 3, 20, EventKind::ValidationConsumed { id: rid(1, 1), version: 1 }),
            ev(
                1,
                4,
                0,
                EventKind::StreamRetransmit {
                    src: 1,
                    dest: 2,
                    stream_seq: 3,
                    req: Some(rid(1, 1)),
                },
            ),
            ev(1, 5, 40, EventKind::ReqStable { id: rid(1, 1) }),
        ]
    }

    #[test]
    fn one_request_full_lifecycle() {
        let report = build_spans(&merge_events(&lifecycle_journal()));
        assert_eq!(report.spans.len(), 1);
        let s = report.span(rid(1, 1)).unwrap();
        assert_eq!(s.generated.unwrap().at, 10);
        assert_eq!(s.validation.unwrap().0, 1);
        assert_eq!(s.validated_at_origin.unwrap().at, 20);
        assert_eq!(s.validation_rtt(), Some(10));
        assert_eq!(s.retransmits, 1);
        assert!(s.stable_at_origin.is_some());
        assert_eq!(s.remotes.len(), 2);
        let r0 = &s.remotes[0];
        assert_eq!(r0.site, 0);
        assert_eq!(r0.outcome.unwrap().0, Outcome::Executed);
        assert!(r0.deferred.is_none());
        let r2 = &s.remotes[1];
        assert_eq!(r2.site, 2);
        assert!(matches!(r2.deferred.unwrap().0, DeferReason::MissingVersion(1)));
        assert_eq!(r2.outcome.unwrap().1.at, 25);
        // Convergence lag: last remote outcome (25) − generation (10).
        assert_eq!(s.convergence_lag(), Some(15));
        assert!(s.settled_everywhere());
    }

    #[test]
    fn spans_inherit_the_events_document_tag() {
        let mut journal = lifecycle_journal();
        for e in &mut journal {
            e.doc = 42;
        }
        // A second request in a different document on the same journal.
        let mut other = ev(1, 6, 50, EventKind::ReqGenerated { id: rid(1, 2) });
        other.doc = 7;
        journal.push(other);
        let report = build_spans(&merge_events(&journal));
        assert_eq!(report.span(rid(1, 1)).unwrap().doc, 42);
        assert_eq!(report.span(rid(1, 2)).unwrap().doc, 7);
        // Untagged journals keep the single-document default.
        assert_eq!(build_spans(&merge_events(&lifecycle_journal())).spans[0].doc, 0);
    }

    #[test]
    fn unsettled_remote_blocks_convergence_lag() {
        let mut journal = lifecycle_journal();
        journal.retain(|e| !(e.site == 2 && e.seq == 3)); // site 2 never executes
        let report = build_spans(&merge_events(&journal));
        let s = report.span(rid(1, 1)).unwrap();
        assert_eq!(s.convergence_lag(), None);
        assert!(!s.settled_everywhere());
    }

    #[test]
    fn truncated_origin_yields_partial_span() {
        let mut journal = lifecycle_journal();
        journal.retain(|e| e.site != 1); // the origin's journal is gone
        let report = build_spans(&merge_events(&journal));
        let s = report.span(rid(1, 1)).unwrap();
        assert!(s.generated.is_none());
        assert_eq!(s.remotes.len(), 2, "remote evidence still builds children");
        assert_eq!(s.validation_rtt(), None);
        assert_eq!(s.convergence_lag(), None, "no anchor, no lag");
    }

    #[test]
    fn publish_fills_the_registry() {
        let obs = ObsHandle::metrics_only();
        let report = build_spans(&merge_events(&lifecycle_journal()));
        publish(&report, &obs);
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["trace.requests"], 1);
        assert_eq!(snap.gauges["trace.requests_settled"], 1);
        assert_eq!(snap.gauges["trace.requests_stable"], 1);
        assert_eq!(snap.gauges["trace.requests_undone"], 0);
        assert_eq!(snap.histograms["trace.convergence_lag"].count, 1);
        assert_eq!(snap.histograms["trace.convergence_lag"].sum, 15);
        assert_eq!(snap.histograms["trace.validation_rtt"].sum, 10);
        assert_eq!(snap.histograms["trace.defer_residency"].sum, 7); // 25 − 18
        assert_eq!(snap.histograms["trace.retransmit_amplification"].sum, 1);
    }

    #[test]
    fn undone_requests_are_counted() {
        let mut journal = lifecycle_journal();
        journal.push(ev(2, 4, 30, EventKind::ReqUndone { id: rid(1, 1) }));
        let obs = ObsHandle::metrics_only();
        publish(&build_spans(&merge_events(&journal)), &obs);
        assert_eq!(obs.snapshot().gauges["trace.requests_undone"], 1);
    }
}

//! The journal merger: per-site event journals in, a global
//! happens-before DAG out.
//!
//! Sites journal independently (one `ObsHandle` each, or one shared
//! handle whose journal is split per site); the merger reconstructs the
//! causal structure the protocol induced across them:
//!
//! * **program edges** — consecutive events of one site, in `seq` order;
//! * **delivery edges** — a cooperative request's generation happens
//!   before the first event mentioning that request at every other site
//!   (reception, deferral, execution, denial, validation consumption —
//!   all are downstream of the generation reaching the wire);
//! * **validation edges** — the administrator's `ValidationIssued`
//!   happens before every other site's matching `ValidationConsumed`;
//! * **admin edges** — an administrative request's application at its
//!   origin (the site that applied version `v` without ever receiving
//!   it) happens before every `AdminReceived` of `v` elsewhere.
//!
//! The merger is forensics-grade: journals may be truncated (ring
//! overflow), partial (crashed site) or duplicated (the same journal
//! passed twice). It never panics on such input — it degrades to a
//! partial DAG and explains what it could not stitch in
//! [`MergedTrace::warnings`]. Lamport stamps are *not* used to build
//! edges; they are an independent cross-check
//! ([`MergedTrace::lamport_inversions`]): when all journals share one
//! handle, every reconstructed edge must point up the lamport order.

use dce_obs::{Event, EventKind, ReqId, SiteId};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Why an edge exists. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Same-site program order (consecutive `seq`).
    Program,
    /// Cooperative request generation → first mention at another site.
    Delivery,
    /// Validation issued at the administrator → consumed elsewhere.
    Validation,
    /// Administrative request applied at its origin → received elsewhere.
    Admin,
}

/// One happens-before edge between two journal entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the earlier event in [`MergedTrace::events`].
    pub from: usize,
    /// Index of the later event.
    pub to: usize,
    /// Why the earlier one happens before the later one.
    pub kind: EdgeKind,
}

/// The merged journal: deduplicated events (sorted by site, then by
/// per-site sequence) plus the reconstructed happens-before edges.
#[derive(Debug, Clone, Default)]
pub struct MergedTrace {
    /// All distinct events, sorted by `(site, seq)`.
    pub events: Vec<Event>,
    /// Happens-before edges between indices into `events`.
    pub edges: Vec<Edge>,
    /// What the merger could not stitch (gaps, missing generations,
    /// conflicting duplicates). Empty for a complete, consistent trace.
    pub warnings: Vec<String>,
}

impl MergedTrace {
    /// The distinct site ids appearing in the trace, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        let set: BTreeSet<SiteId> = self.events.iter().map(|e| e.site).collect();
        set.into_iter().collect()
    }

    /// A topological order of the DAG (Kahn's algorithm), or the indices
    /// of the events stuck in a cycle. A cycle means the reconstructed
    /// causality is inconsistent — it cannot arise from journals of one
    /// correct run.
    pub fn topo_order(&self) -> Result<Vec<usize>, Vec<usize>> {
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            out[e.from].push(e.to);
            indegree[e.to] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in &out[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err((0..n).filter(|&i| indegree[i] > 0).collect())
        }
    }

    /// Whether the reconstructed happens-before relation is cycle-free.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_ok()
    }

    /// Edges that point *down* the lamport order — impossible when all
    /// journals were recorded through one shared handle, expected noise
    /// when each site kept an independent clock. A consistency
    /// cross-check, deliberately separate from DAG construction.
    pub fn lamport_inversions(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .filter(|e| self.events[e.from].lamport >= self.events[e.to].lamport)
            .copied()
            .collect()
    }

    /// One-line shape summary for logs and bin output.
    pub fn summary(&self) -> String {
        format!(
            "{} events across {} sites, {} edges, {} warning(s), {}",
            self.events.len(),
            self.sites().len(),
            self.edges.len(),
            self.warnings.len(),
            if self.is_acyclic() { "acyclic" } else { "CYCLIC" }
        )
    }
}

/// Merges per-site journals into one happens-before DAG. Accepts any
/// partition of the events — one journal per site, one shared journal,
/// or overlapping fragments (exact duplicates are dropped; conflicting
/// ones keep the first copy and warn).
pub fn merge_journals(journals: &[Vec<Event>]) -> MergedTrace {
    let mut warnings = Vec::new();

    // Flatten, deduplicating on the per-site emission coordinate.
    let mut seen: HashMap<(SiteId, u64), Event> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    for journal in journals {
        for ev in journal {
            match seen.entry((ev.site, ev.seq)) {
                Entry::Vacant(slot) => {
                    slot.insert(*ev);
                    events.push(*ev);
                }
                Entry::Occupied(slot) => {
                    if slot.get() != ev {
                        warnings.push(format!(
                            "conflicting copies of site {} seq {}: keeping the first",
                            ev.site, ev.seq
                        ));
                    }
                }
            }
        }
    }
    events.sort_by_key(|e| (e.site, e.seq));

    let mut edges = Vec::new();

    // Program order, warning on truncation gaps but still chaining the
    // surviving prefix/suffix — a partial program order is still sound.
    for i in 1..events.len() {
        let (a, b) = (events[i - 1], events[i]);
        if a.site != b.site {
            continue;
        }
        if b.seq != a.seq + 1 {
            warnings.push(format!(
                "site {} journal gap: seq {} follows seq {} (ring overflow or truncation)",
                b.site, b.seq, a.seq
            ));
        }
        edges.push(Edge { from: i - 1, to: i, kind: EdgeKind::Program });
    }

    // Delivery: generation → first non-transport mention per other site.
    // A request id generated more than once (journals from *different*
    // runs merged together) is ambiguous — no edge can be anchored
    // safely, so such ids are excluded rather than guessed at.
    let mut generated: HashMap<ReqId, usize> = HashMap::new();
    let mut ambiguous: BTreeSet<ReqId> = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        if let EventKind::ReqGenerated { id } = ev.kind {
            if generated.insert(id, i).is_some() {
                ambiguous.insert(id);
            }
        }
    }
    for id in &ambiguous {
        generated.remove(id);
        warnings.push(format!(
            "request {id} generated more than once — journals of distinct runs merged? \
             skipping its causal edges"
        ));
    }
    let mut first_mention: HashMap<(ReqId, SiteId), usize> = HashMap::new();
    let mut orphaned: BTreeSet<ReqId> = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.kind.is_transport() {
            continue;
        }
        let Some(id) = ev.kind.req_id() else { continue };
        if ev.site == id.site {
            continue;
        }
        first_mention.entry((id, ev.site)).or_insert(i);
        if !generated.contains_key(&id) && !ambiguous.contains(&id) {
            orphaned.insert(id);
        }
    }
    for (&(id, _site), &to) in &first_mention {
        if let Some(&from) = generated.get(&id) {
            edges.push(Edge { from, to, kind: EdgeKind::Delivery });
        }
    }
    for id in orphaned {
        warnings.push(format!(
            "request {id} is mentioned remotely but its generation event is missing \
             (origin journal truncated or lost)"
        ));
    }

    // Validation handshake: issue → every remote consumption of the same
    // (request, version) pair.
    let mut issued: HashMap<(ReqId, u64), usize> = HashMap::new();
    let mut issued_twice: BTreeSet<(ReqId, u64)> = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        if let EventKind::ValidationIssued { id, version } = ev.kind {
            if issued.insert((id, version), i).is_some() {
                issued_twice.insert((id, version));
            }
        }
    }
    for &(id, version) in &issued_twice {
        issued.remove(&(id, version));
        warnings.push(format!(
            "validation of {id} (v{version}) issued more than once — skipping its edges"
        ));
    }
    for (i, ev) in events.iter().enumerate() {
        let EventKind::ValidationConsumed { id, version } = ev.kind else { continue };
        match issued.get(&(id, version)) {
            Some(&from) if events[from].site != ev.site => {
                edges.push(Edge { from, to: i, kind: EdgeKind::Validation });
            }
            Some(_) => {} // the administrator's own consumption: program order covers it
            None if issued_twice.contains(&(id, version)) => {}
            None => warnings.push(format!(
                "validation of {id} (v{version}) consumed at site {} but never issued \
                 in the merged journals",
                ev.site
            )),
        }
    }

    // Administrative total order: the origin of version v is the site
    // that applied v without ever receiving it (it generated v locally).
    let mut applied: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut received_sites: HashMap<u64, BTreeSet<SiteId>> = HashMap::new();
    let mut received_nodes: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::AdminApplied { version, .. } => applied.entry(version).or_default().push(i),
            EventKind::ValidationIssued { version, .. } => {
                // The issue is the version's birth at the administrator;
                // use it as the admin-order anchor so the edge exists
                // even if the admin's own AdminApplied was evicted.
                applied.entry(version).or_default().insert(0, i);
            }
            EventKind::AdminReceived { version } => {
                received_sites.entry(version).or_default().insert(ev.site);
                received_nodes.entry(version).or_default().push(i);
            }
            _ => {}
        }
    }
    for (version, nodes) in &applied {
        let recv = received_sites.get(version);
        let origins: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|&i| recv.is_none_or(|s| !s.contains(&events[i].site)))
            .collect();
        let Some(&origin) = origins.first() else {
            if received_nodes.contains_key(version) {
                warnings.push(format!(
                    "admin v{version} was received remotely but its origin's application \
                     is missing (administrator journal truncated?)"
                ));
            }
            continue;
        };
        let origin_site = events[origin].site;
        if origins.iter().any(|&i| events[i].site != origin_site) {
            warnings.push(format!(
                "admin v{version} has more than one apparent origin site — journals \
                 disagree about the version total order"
            ));
        }
        for &to in received_nodes.get(version).into_iter().flatten() {
            edges.push(Edge { from: origin, to, kind: EdgeKind::Admin });
        }
    }

    let trace = MergedTrace { events, edges, warnings };
    finish_with_lamport_check(trace)
}

/// Merges a single already-combined journal (e.g. the shared-handle
/// journal a `SimNet` run produces) by splitting it per site first.
pub fn merge_events(events: &[Event]) -> MergedTrace {
    merge_journals(std::slice::from_ref(&events.to_vec()))
}

fn finish_with_lamport_check(mut trace: MergedTrace) -> MergedTrace {
    let inversions = trace.lamport_inversions().len();
    if inversions > 0 {
        trace.warnings.push(format!(
            "{inversions} edge(s) invert the lamport order — journals were stamped by \
             independent clocks, or the trace is inconsistent"
        ));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(site: u32, seq: u64, lamport: u64, kind: EventKind) -> Event {
        Event { site, doc: 0, seq, version: 0, lamport, at: lamport, kind }
    }

    fn rid(site: u32, seq: u64) -> ReqId {
        ReqId::new(site, seq)
    }

    /// One request travelling 1 → {0, 2}: the smallest full lifecycle.
    fn tiny_journal() -> Vec<Event> {
        vec![
            ev(1, 1, 1, EventKind::ReqGenerated { id: rid(1, 1) }),
            ev(1, 2, 2, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(0, 1, 3, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(0, 2, 4, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(2, 1, 5, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(2, 2, 6, EventKind::ReqExecuted { id: rid(1, 1) }),
        ]
    }

    #[test]
    fn program_and_delivery_edges() {
        let t = merge_events(&tiny_journal());
        assert_eq!(t.events.len(), 6);
        assert!(t.warnings.is_empty(), "{:?}", t.warnings);
        assert!(t.is_acyclic());
        assert!(t.lamport_inversions().is_empty());
        let programs = t.edges.iter().filter(|e| e.kind == EdgeKind::Program).count();
        let deliveries = t.edges.iter().filter(|e| e.kind == EdgeKind::Delivery).count();
        assert_eq!(programs, 3, "one per consecutive same-site pair");
        assert_eq!(deliveries, 2, "generation reaches two remote sites");
        // Every delivery edge starts at the generation event.
        for e in t.edges.iter().filter(|e| e.kind == EdgeKind::Delivery) {
            assert!(matches!(t.events[e.from].kind, EventKind::ReqGenerated { .. }));
        }
    }

    #[test]
    fn validation_and_admin_edges() {
        // Site 0 is the administrator: issues v1 validating 1#1; sites 1
        // and 2 receive the admin request and consume the validation.
        let journal = vec![
            ev(1, 1, 1, EventKind::ReqGenerated { id: rid(1, 1) }),
            ev(0, 1, 2, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(0, 2, 3, EventKind::ReqExecuted { id: rid(1, 1) }),
            ev(0, 3, 4, EventKind::ValidationIssued { id: rid(1, 1), version: 1 }),
            ev(0, 4, 5, EventKind::ValidationConsumed { id: rid(1, 1), version: 1 }),
            ev(0, 5, 6, EventKind::AdminApplied { version: 1, restrictive: false }),
            ev(1, 2, 7, EventKind::AdminReceived { version: 1 }),
            ev(1, 3, 8, EventKind::ValidationConsumed { id: rid(1, 1), version: 1 }),
            ev(1, 4, 9, EventKind::AdminApplied { version: 1, restrictive: false }),
            ev(2, 1, 10, EventKind::AdminReceived { version: 1 }),
            ev(
                2,
                2,
                11,
                EventKind::ReqDeferred {
                    id: rid(1, 1),
                    reason: dce_obs::DeferReason::MissingRequest(rid(1, 1)),
                },
            ),
        ];
        let t = merge_events(&journal);
        assert!(t.warnings.is_empty(), "{:?}", t.warnings);
        assert!(t.is_acyclic());
        let validations: Vec<_> =
            t.edges.iter().filter(|e| e.kind == EdgeKind::Validation).collect();
        assert_eq!(validations.len(), 1, "only the remote consumption gets an edge");
        assert_eq!(t.events[validations[0].to].site, 1);
        let admins: Vec<_> = t.edges.iter().filter(|e| e.kind == EdgeKind::Admin).collect();
        assert_eq!(admins.len(), 2, "v1 travelled to two remote sites");
        for e in &admins {
            assert_eq!(t.events[e.from].site, 0, "the administrator is the origin of v1");
        }
        assert!(t.lamport_inversions().is_empty());
    }

    #[test]
    fn split_journals_equal_shared_journal() {
        let shared = tiny_journal();
        let mut per_site: Vec<Vec<Event>> = vec![Vec::new(); 3];
        for e in &shared {
            per_site[e.site as usize].push(*e);
        }
        let a = merge_events(&shared);
        let b = merge_journals(&per_site);
        assert_eq!(a.events, b.events);
        assert_eq!(a.edges.len(), b.edges.len());
    }

    #[test]
    fn truncated_journal_degrades_without_panicking() {
        // Drop the generation event (ring overflow at the origin site).
        let mut journal = tiny_journal();
        journal.remove(0);
        let t = merge_events(&journal);
        assert!(t.is_acyclic());
        assert!(
            t.warnings.iter().any(|w| w.contains("generation event is missing")),
            "{:?}",
            t.warnings
        );
        // No delivery edges can be anchored, but program order survives.
        assert_eq!(t.edges.iter().filter(|e| e.kind == EdgeKind::Delivery).count(), 0);
        assert!(t.edges.iter().any(|e| e.kind == EdgeKind::Program));
    }

    #[test]
    fn seq_gaps_are_reported_but_bridged() {
        let journal = vec![
            ev(1, 1, 1, EventKind::ReqGenerated { id: rid(1, 1) }),
            // seq 2..=9 evicted by the ring
            ev(1, 10, 20, EventKind::ReqExecuted { id: rid(1, 5) }),
        ];
        let t = merge_events(&journal);
        assert!(t.warnings.iter().any(|w| w.contains("journal gap")), "{:?}", t.warnings);
        assert_eq!(t.edges.len(), 1, "the gap is bridged by a program edge");
        assert!(t.is_acyclic());
    }

    #[test]
    fn duplicate_and_conflicting_copies() {
        let shared = tiny_journal();
        // The same journal twice: exact duplicates vanish silently.
        let t = merge_journals(&[shared.clone(), shared.clone()]);
        assert_eq!(t.events.len(), 6);
        assert!(t.warnings.is_empty(), "{:?}", t.warnings);
        // A conflicting copy of (site 1, seq 1) warns and keeps the first.
        let mut forged = shared.clone();
        forged[0].kind = EventKind::ReqGenerated { id: rid(1, 9) };
        let t = merge_journals(&[shared, forged]);
        assert_eq!(t.events.len(), 6);
        assert!(t.warnings.iter().any(|w| w.contains("conflicting copies")), "{:?}", t.warnings);
        assert!(matches!(
            t.events.iter().find(|e| e.site == 1 && e.seq == 1).unwrap().kind,
            EventKind::ReqGenerated { id } if id == rid(1, 1)
        ));
    }

    #[test]
    fn independent_clocks_flag_lamport_inversions() {
        // Two sites with their own lamport clocks: the remote mention
        // carries a *smaller* stamp than the generation.
        let journal = vec![
            ev(1, 1, 10, EventKind::ReqGenerated { id: rid(1, 1) }),
            ev(0, 1, 2, EventKind::ReqReceived { id: rid(1, 1) }),
        ];
        let t = merge_events(&journal);
        assert!(t.is_acyclic(), "lamport noise must not manufacture cycles");
        assert_eq!(t.lamport_inversions().len(), 1);
        assert!(t.warnings.iter().any(|w| w.contains("lamport")), "{:?}", t.warnings);
    }

    #[test]
    fn colliding_runs_stay_acyclic() {
        // Two *different runs* recorded through one handle (seqs keep
        // counting, request ids and admin versions restart): ids become
        // ambiguous. The merger must refuse to anchor edges for them
        // instead of stitching run 2's issue to run 1's consumption.
        let run = |seq0: u64, lam0: u64| {
            vec![
                ev(1, seq0 + 1, lam0 + 1, EventKind::ReqGenerated { id: rid(1, 1) }),
                ev(0, seq0 + 1, lam0 + 2, EventKind::ReqReceived { id: rid(1, 1) }),
                ev(
                    0,
                    seq0 + 2,
                    lam0 + 3,
                    EventKind::ValidationIssued { id: rid(1, 1), version: 1 },
                ),
                ev(
                    1,
                    seq0 + 2,
                    lam0 + 4,
                    EventKind::ValidationConsumed { id: rid(1, 1), version: 1 },
                ),
            ]
        };
        let mut journal = run(0, 0);
        journal.extend(run(2, 10));
        let t = merge_events(&journal);
        assert!(t.is_acyclic(), "ambiguous ids must not manufacture cycles");
        assert!(t.warnings.iter().any(|w| w.contains("generated more than once")));
        assert!(t.warnings.iter().any(|w| w.contains("issued more than once")));
        assert_eq!(t.edges.iter().filter(|e| e.kind != EdgeKind::Program).count(), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let t = merge_journals(&[]);
        assert!(t.events.is_empty());
        assert!(t.is_acyclic());
        assert_eq!(t.summary(), "0 events across 0 sites, 0 edges, 0 warning(s), acyclic");
    }

    #[test]
    fn a_real_cycle_is_detected() {
        // Hand-forged inconsistency: 1#1's generation claims to be *after*
        // site 0 received it in site 0's own program order… achieved by
        // making each site's first mention of the other's request precede
        // its own generation. (Cannot arise from one correct run.)
        let journal = vec![
            ev(1, 1, 1, EventKind::ReqReceived { id: rid(0, 1) }),
            ev(1, 2, 2, EventKind::ReqGenerated { id: rid(1, 1) }),
            ev(0, 1, 3, EventKind::ReqReceived { id: rid(1, 1) }),
            ev(0, 2, 4, EventKind::ReqGenerated { id: rid(0, 1) }),
        ];
        let t = merge_events(&journal);
        assert!(!t.is_acyclic());
        let stuck = t.topo_order().unwrap_err();
        assert_eq!(stuck.len(), 4, "all four events participate in the cycle");
    }
}

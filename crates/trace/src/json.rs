//! Hand-rolled JSON for event journals and flight dumps.
//!
//! The vendored serde stub's derives are inert, so (exactly like
//! `dce-obs`' `MetricsReport::to_json`) this module writes JSON by hand
//! and parses it with a small recursive-descent [`Value`] parser. Events
//! serialize flat — the five coordinates plus the kind's payload fields
//! prefixed per family (`req_site`/`req_seq`, `admin_version`,
//! `wait_*`, …) — so the output greps well and external tools can load
//! it without knowing the enum.

use dce_obs::{DeferReason, Event, EventKind, ReqId};
use std::fmt::Write as _;

/// A parsed JSON value. Integers that fit `u64` stay exact (`Int`);
/// everything else numeric falls back to `Float`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` exactly.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Value::Int(n));
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

/// Escapes and quotes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a journal as a JSON array, one flat object per event.
pub fn events_to_json(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&event_to_json(ev));
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

fn event_to_json(ev: &Event) -> String {
    let mut f = String::from("{");
    let _ = write!(
        f,
        "\"site\": {}, \"seq\": {}, \"version\": {}, \"lamport\": {}, \"at\": {}, \"kind\": {}",
        ev.site,
        ev.seq,
        ev.version,
        ev.lamport,
        ev.at,
        quote(ev.kind.name())
    );
    // The document tag is written only when set, so single-document
    // journals keep their pre-sharding shape (and old readers keep
    // working); absent on read means doc 0.
    if ev.doc != 0 {
        let _ = write!(f, ", \"doc\": {}", ev.doc);
    }
    let req = |f: &mut String, id: ReqId| {
        let _ = write!(f, ", \"req_site\": {}, \"req_seq\": {}", id.site, id.seq);
    };
    let wait = |f: &mut String, reason: &DeferReason| match reason {
        DeferReason::MissingVersion(v) => {
            let _ = write!(f, ", \"wait\": \"version\", \"wait_version\": {v}");
        }
        DeferReason::MissingRequest(id) => {
            let _ = write!(
                f,
                ", \"wait\": \"request\", \"wait_site\": {}, \"wait_seq\": {}",
                id.site, id.seq
            );
        }
    };
    match &ev.kind {
        EventKind::ReqGenerated { id }
        | EventKind::ReqReceived { id }
        | EventKind::ReqDuplicate { id }
        | EventKind::ReqExecuted { id }
        | EventKind::ReqInert { id }
        | EventKind::ReqDenied { id }
        | EventKind::ReqUndone { id }
        | EventKind::ReqStable { id } => req(&mut f, *id),
        EventKind::ReqDeferred { id, reason } => {
            req(&mut f, *id);
            wait(&mut f, reason);
        }
        EventKind::CheckLocalDenied { user } => {
            let _ = write!(f, ", \"user\": {user}");
        }
        EventKind::AdminReceived { version } => {
            let _ = write!(f, ", \"admin_version\": {version}");
        }
        EventKind::AdminDeferred { version, reason } => {
            let _ = write!(f, ", \"admin_version\": {version}");
            wait(&mut f, reason);
        }
        EventKind::AdminApplied { version, restrictive } => {
            let _ = write!(f, ", \"admin_version\": {version}, \"restrictive\": {restrictive}");
        }
        EventKind::ValidationIssued { id, version }
        | EventKind::ValidationConsumed { id, version } => {
            req(&mut f, *id);
            let _ = write!(f, ", \"admin_version\": {version}");
        }
        EventKind::StreamRetransmit { src, dest, stream_seq, req: carried } => {
            let _ = write!(f, ", \"src\": {src}, \"dest\": {dest}, \"stream_seq\": {stream_seq}");
            if let Some(id) = carried {
                req(&mut f, *id);
            }
        }
        EventKind::LegDropped { src, dest } | EventKind::LegDuplicated { src, dest } => {
            let _ = write!(f, ", \"src\": {src}, \"dest\": {dest}");
        }
        EventKind::PartitionHealed { at_ms } => {
            let _ = write!(f, ", \"at_ms\": {at_ms}");
        }
        EventKind::SiteCrashed { site } | EventKind::SiteRejoined { site } => {
            let _ = write!(f, ", \"t_site\": {site}");
        }
    }
    f.push('}');
    f
}

/// Parses a journal previously written by [`events_to_json`] (or any
/// JSON array of objects in that shape).
pub fn events_from_json(input: &str) -> Result<Vec<Event>, String> {
    let root = parse(input)?;
    let items = root.as_arr().ok_or("expected a JSON array of events")?;
    items.iter().map(event_from_value).collect()
}

/// Decodes one event object (shared with the flight-dump reader).
pub fn event_from_value(v: &Value) -> Result<Event, String> {
    let field = |k: &str| -> Result<u64, String> {
        v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("missing field {k:?}"))
    };
    let req = || -> Result<ReqId, String> {
        Ok(ReqId::new(field("req_site")? as u32, field("req_seq")?))
    };
    let wait = || -> Result<DeferReason, String> {
        match v.get("wait").and_then(Value::as_str) {
            Some("version") => Ok(DeferReason::MissingVersion(field("wait_version")?)),
            Some("request") => Ok(DeferReason::MissingRequest(ReqId::new(
                field("wait_site")? as u32,
                field("wait_seq")?,
            ))),
            other => Err(format!("bad wait discriminant {other:?}")),
        }
    };
    let kind_name = v.get("kind").and_then(Value::as_str).ok_or("missing field \"kind\"")?;
    let kind = match kind_name {
        "req_generated" => EventKind::ReqGenerated { id: req()? },
        "req_received" => EventKind::ReqReceived { id: req()? },
        "req_duplicate" => EventKind::ReqDuplicate { id: req()? },
        "req_deferred" => EventKind::ReqDeferred { id: req()?, reason: wait()? },
        "req_executed" => EventKind::ReqExecuted { id: req()? },
        "req_inert" => EventKind::ReqInert { id: req()? },
        "req_denied" => EventKind::ReqDenied { id: req()? },
        "req_undone" => EventKind::ReqUndone { id: req()? },
        "req_stable" => EventKind::ReqStable { id: req()? },
        "check_local_denied" => EventKind::CheckLocalDenied { user: field("user")? as u32 },
        "admin_received" => EventKind::AdminReceived { version: field("admin_version")? },
        "admin_deferred" => {
            EventKind::AdminDeferred { version: field("admin_version")?, reason: wait()? }
        }
        "admin_applied" => EventKind::AdminApplied {
            version: field("admin_version")?,
            restrictive: matches!(v.get("restrictive"), Some(Value::Bool(true))),
        },
        "validation_issued" => {
            EventKind::ValidationIssued { id: req()?, version: field("admin_version")? }
        }
        "validation_consumed" => {
            EventKind::ValidationConsumed { id: req()?, version: field("admin_version")? }
        }
        "stream_retransmit" => EventKind::StreamRetransmit {
            src: field("src")? as u32,
            dest: field("dest")? as u32,
            stream_seq: field("stream_seq")?,
            req: if v.get("req_site").is_some() { Some(req()?) } else { None },
        },
        "leg_dropped" => {
            EventKind::LegDropped { src: field("src")? as u32, dest: field("dest")? as u32 }
        }
        "leg_duplicated" => {
            EventKind::LegDuplicated { src: field("src")? as u32, dest: field("dest")? as u32 }
        }
        "partition_healed" => EventKind::PartitionHealed { at_ms: field("at_ms")? },
        "site_crashed" => EventKind::SiteCrashed { site: field("t_site")? as u32 },
        "site_rejoined" => EventKind::SiteRejoined { site: field("t_site")? as u32 },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event {
        site: field("site")? as u32,
        doc: v.get("doc").and_then(Value::as_u64).unwrap_or(0),
        seq: field("seq")?,
        version: field("version")?,
        lamport: field("lamport")?,
        at: field("at")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(site: u32, seq: u64) -> ReqId {
        ReqId::new(site, seq)
    }

    /// One event of every kind, exercising every payload shape.
    fn one_of_each() -> Vec<Event> {
        let kinds = vec![
            EventKind::ReqGenerated { id: rid(1, 1) },
            EventKind::ReqReceived { id: rid(1, 1) },
            EventKind::ReqDuplicate { id: rid(1, 1) },
            EventKind::ReqDeferred { id: rid(1, 2), reason: DeferReason::MissingVersion(3) },
            EventKind::ReqDeferred {
                id: rid(1, 3),
                reason: DeferReason::MissingRequest(rid(2, 1)),
            },
            EventKind::ReqExecuted { id: rid(1, 1) },
            EventKind::ReqInert { id: rid(1, 1) },
            EventKind::ReqDenied { id: rid(1, 1) },
            EventKind::ReqUndone { id: rid(1, 1) },
            EventKind::ReqStable { id: rid(1, 1) },
            EventKind::CheckLocalDenied { user: 7 },
            EventKind::AdminReceived { version: 4 },
            EventKind::AdminDeferred { version: 5, reason: DeferReason::MissingVersion(4) },
            EventKind::AdminApplied { version: 5, restrictive: true },
            EventKind::AdminApplied { version: 6, restrictive: false },
            EventKind::ValidationIssued { id: rid(1, 1), version: 7 },
            EventKind::ValidationConsumed { id: rid(1, 1), version: 7 },
            EventKind::StreamRetransmit { src: 0, dest: 2, stream_seq: 9, req: Some(rid(1, 1)) },
            EventKind::StreamRetransmit { src: 2, dest: 0, stream_seq: 10, req: None },
            EventKind::LegDropped { src: 0, dest: 1 },
            EventKind::LegDuplicated { src: 1, dest: 0 },
            EventKind::PartitionHealed { at_ms: 123 },
            EventKind::SiteCrashed { site: 2 },
            EventKind::SiteRejoined { site: 2 },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                site: (i % 3) as u32,
                doc: (i % 2) as u64 * 11,
                seq: i as u64 + 1,
                version: 2,
                lamport: i as u64 + 1,
                at: i as u64 * 10,
                kind,
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips() {
        let events = one_of_each();
        let json = events_to_json(&events);
        let back = events_from_json(&json).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn u64_extremes_stay_exact() {
        let events = vec![Event {
            site: u32::MAX,
            doc: u64::MAX,
            seq: u64::MAX,
            version: u64::MAX,
            lamport: u64::MAX,
            at: u64::MAX,
            kind: EventKind::ReqStable { id: rid(u32::MAX, u64::MAX) },
        }];
        let back = events_from_json(&events_to_json(&events)).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1} ünïcode";
        let parsed = parse(&quote(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(events_from_json("{\"not\": \"an array\"}").is_err());
        assert!(events_from_json("[{\"kind\": \"nonsense\"}]").is_err());
    }

    #[test]
    fn parser_reads_report_style_documents() {
        // The flight dump embeds a MetricsReport rendered by dce-obs;
        // make sure floats and nested maps parse.
        let doc =
            "{\n  \"counters\": { \"a\": 1 },\n  \"histograms\": { \"h\": { \"mean\": 1.5 } }\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("counters").unwrap().get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("histograms").unwrap().get("h").unwrap().get("mean"),
            Some(&Value::Float(1.5))
        );
    }
}

//! `dce-top` — watch a running `dce-server`'s per-document telemetry.
//!
//! ```text
//! dce-top --addr 127.0.0.1:7461 --watch            # live table, 1s refresh
//! dce-top --addr 127.0.0.1:7461 --json             # one JSON snapshot to stdout
//! dce-top --addr 127.0.0.1:7461 --json --out f.json
//! ```
//!
//! Scrapes the server's metrics frame (`MetricsRequest`/`MetricsReport`)
//! — no editor identity needed. In `--watch` mode counter columns are
//! per-interval deltas; one-shot mode shows cumulative totals.

use dce_top::{doc_rows, render_table, scrape};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dce-top [--addr HOST:PORT] [--json] [--out FILE] [--watch] \
         [--interval-ms MS] [--timeout-s S]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7461".to_string();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut watch = false;
    let mut interval_ms: u64 = 1000;
    let mut timeout_s: u64 = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = val(),
            "--json" => json = true,
            "--out" => out = Some(val()),
            "--watch" => watch = true,
            "--interval-ms" => interval_ms = val().parse().unwrap_or_else(|_| usage()),
            "--timeout-s" => timeout_s = val().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let timeout = Duration::from_secs(timeout_s.max(1));

    if json {
        let report = scrape(&addr, timeout).unwrap_or_else(|e| fail(&e));
        let body = report.to_json();
        match out {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, format!("{body}\n")) {
                    fail(&format!("write {path}: {e}"));
                }
                eprintln!("dce-top: wrote {path}");
            }
            None => println!("{body}"),
        }
        return;
    }

    if !watch {
        let report = scrape(&addr, timeout).unwrap_or_else(|e| fail(&e));
        print!("{}", render_table(&report, &doc_rows(&report, None), None));
        return;
    }

    // --watch: poll forever, diffing consecutive scrapes so counter
    // columns show what happened in the last interval only.
    let interval = Duration::from_millis(interval_ms.max(100));
    let mut prev = None;
    loop {
        match scrape(&addr, timeout) {
            Ok(report) => {
                let rows = doc_rows(&report, prev.as_ref());
                let span = prev.as_ref().map(|p: &dce_obs::MetricsReport| {
                    Duration::from_nanos(report.at_ns.saturating_sub(p.at_ns))
                });
                // Clear + home, like top(1); falls out harmlessly when
                // stdout is a pipe.
                print!("\x1b[2J\x1b[H{}", render_table(&report, &rows, span));
                use std::io::Write;
                let _ = std::io::stdout().flush();
                prev = Some(report);
            }
            Err(e) => eprintln!("dce-top: scrape failed: {e}"),
        }
        std::thread::sleep(interval);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("dce-top: {msg}");
    std::process::exit(1);
}

//! # dce-top — live per-document telemetry for a running `dce-server`
//!
//! The server exports its whole `dce-obs` metrics registry over the
//! frame protocol ([`dce_net::frame::Frame::MetricsRequest`] /
//! `MetricsReport`). This crate is the consumer side: it scrapes a
//! report, groups the per-document series (`<name>.doc<N>`) back into
//! rows, and renders the operational table the `dce-top` bin shows —
//! queue depth, log length, retransmits, fsync p99, compactions.
//!
//! Two scrapes can be diffed ([`dce_obs::MetricsReport::delta`]) into
//! interval-exact rates; [`doc_rows`] does that when handed the
//! previous report, which is how `--watch` turns cumulative counters
//! into per-second columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dce_document::Char;
use dce_net::frame::{encode_frame, Frame, FrameDecoder};
use dce_obs::MetricsReport;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Connects to `addr`, sends one `MetricsRequest` and waits (bounded by
/// `timeout`) for the server's `MetricsReport`.
pub fn scrape(addr: &str, timeout: Duration) -> Result<MetricsReport, String> {
    let deadline = Instant::now() + timeout;
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_millis(200))).map_err(|e| e.to_string())?;
    stream
        .write_all(&encode_frame(&Frame::<Char>::MetricsRequest { session: 0 }))
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        loop {
            match decoder.next::<Char>() {
                Ok(Some(Frame::MetricsReport { report, .. })) => {
                    return Ok(report.as_ref().clone())
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => return Err(format!("bad frame from server: {e}")),
            }
        }
        if Instant::now() >= deadline {
            return Err("scrape timed out".into());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err("server closed the connection".into()),
            Ok(n) => decoder.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

/// One row of the per-document table. Counter-valued fields are
/// cumulative on a one-shot scrape and interval deltas when [`doc_rows`]
/// was handed a previous report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocRow {
    /// Document id (0 is the untagged default document).
    pub doc: u64,
    /// Messages the administrator replica has processed.
    pub delivered: u64,
    /// Causally-ready receive queue depth at the administrator.
    pub queue_depth: u64,
    /// Combined canonical + administrative log length.
    pub log_len: u64,
    /// Session-layer packets buffered awaiting acks.
    pub unacked: u64,
    /// Timer-driven retransmissions pushed to members.
    pub retransmits: u64,
    /// 99th-percentile WAL fsync latency, nanoseconds (0 without a
    /// durable store).
    pub fsync_p99_ns: u64,
    /// Watermark compactions fired.
    pub compactions: u64,
}

/// The per-document series name for `doc` — document 0 publishes under
/// the untagged rollup name, every other document under `.doc<N>`
/// (mirrors `ObsHandle::for_doc`).
fn scoped(name: &str, doc: u64) -> String {
    if doc == 0 {
        name.to_string()
    } else {
        format!("{name}.doc{doc}")
    }
}

/// Document ids present in `report`, parsed back out of `.doc<N>` name
/// suffixes. Document 0 is always listed: its series are the untagged
/// ones.
pub fn doc_ids(report: &MetricsReport) -> Vec<u64> {
    let mut ids = vec![0];
    let names = report.counters.keys().chain(report.gauges.keys()).chain(report.histograms.keys());
    for name in names {
        if let Some((_, suffix)) = name.rsplit_once(".doc") {
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(doc) = suffix.parse::<u64>() {
                    if !ids.contains(&doc) {
                        ids.push(doc);
                    }
                }
            }
        }
    }
    ids.sort_unstable();
    ids
}

/// Builds the per-document rows from a scrape. With `prev`, counters and
/// histograms are diffed first so the rows describe only the interval
/// between the two scrapes (gauges always show the latest value).
pub fn doc_rows(report: &MetricsReport, prev: Option<&MetricsReport>) -> Vec<DocRow> {
    let interval;
    let report = match prev {
        Some(p) => {
            interval = report.delta(p);
            &interval
        }
        None => report,
    };
    let counter = |name: &str, doc: u64| report.counters.get(&scoped(name, doc)).copied();
    let gauge = |name: &str, doc: u64| report.gauges.get(&scoped(name, doc)).copied();
    let hist_p99 = |name: &str, doc: u64| report.histograms.get(&scoped(name, doc)).map(|h| h.p99);
    doc_ids(report)
        .into_iter()
        .map(|doc| DocRow {
            doc,
            delivered: counter("server.delivered", doc).unwrap_or(0),
            queue_depth: gauge("site.queue_depth_ready", doc).unwrap_or(0),
            log_len: gauge("server.log_len", doc).unwrap_or(0),
            unacked: gauge("server.unacked_depth", doc).unwrap_or(0),
            retransmits: counter("server.retransmits", doc).unwrap_or(0),
            fsync_p99_ns: hist_p99("store.fsync_ns", doc).unwrap_or(0),
            compactions: counter("server.compactions", doc)
                .or_else(|| counter("engine.auto_compactions", doc))
                .unwrap_or(0),
        })
        .collect()
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

/// Renders the operational table: a header line of process-wide totals,
/// then one row per document. `interval` labels the counter columns —
/// `None` means cumulative (one-shot scrape), `Some` means per-interval
/// deltas from `--watch`.
pub fn render_table(report: &MetricsReport, rows: &[DocRow], interval: Option<Duration>) -> String {
    let mut out = String::new();
    let g = |name: &str| report.gauges.get(name).copied().unwrap_or(0);
    out.push_str(&format!(
        "uptime {:.1}s  sessions {}  conns {}  backlog {}B  overflowed {}\n",
        report.at_ns as f64 / 1e9,
        g("server.sessions"),
        g("server.connections"),
        g("server.backlog_bytes"),
        report.counters.get("journal.overflowed").copied().unwrap_or(0),
    ));
    match interval {
        Some(d) => out.push_str(&format!("counters: deltas over {:.1}s\n", d.as_secs_f64())),
        None => out.push_str("counters: cumulative since server start\n"),
    }
    out.push_str(&format!(
        "{:>5} {:>10} {:>7} {:>7} {:>8} {:>8} {:>12} {:>8}\n",
        "DOC", "DELIVERED", "QDEPTH", "LOG", "UNACKED", "RETRANS", "FSYNC-P99us", "COMPACT"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>10} {:>7} {:>7} {:>8} {:>8} {:>12} {:>8}\n",
            r.doc,
            r.delivered,
            r.queue_depth,
            r.log_len,
            r.unacked,
            r.retransmits,
            fmt_us(r.fsync_p99_ns),
            r.compactions,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dce_obs::HistogramSnapshot;

    fn sample() -> MetricsReport {
        let mut r = MetricsReport { at_ns: 2_000_000_000, ..Default::default() };
        r.counters.insert("server.delivered".into(), 100);
        r.counters.insert("server.delivered.doc7".into(), 40);
        r.counters.insert("server.retransmits.doc7".into(), 3);
        r.counters.insert("server.compactions.doc7".into(), 2);
        r.gauges.insert("server.log_len.doc7".into(), 55);
        r.gauges.insert("server.unacked_depth.doc7".into(), 4);
        r.gauges.insert("site.queue_depth_ready.doc7".into(), 6);
        r.gauges.insert("server.sessions".into(), 1);
        let h = HistogramSnapshot::from_buckets(3, 3_000, vec![(200, 3)]);
        r.histograms.insert("store.fsync_ns.doc7".into(), h);
        r
    }

    #[test]
    fn doc_ids_parses_suffixes_and_always_lists_doc_zero() {
        assert_eq!(doc_ids(&sample()), vec![0, 7]);
        // A non-numeric suffix is not a document tag.
        let mut r = sample();
        r.counters.insert("thing.docx".into(), 1);
        assert_eq!(doc_ids(&r), vec![0, 7]);
    }

    #[test]
    fn rows_pick_up_scoped_series() {
        let rows = doc_rows(&sample(), None);
        assert_eq!(rows.len(), 2);
        let d7 = &rows[1];
        assert_eq!(d7.doc, 7);
        assert_eq!(d7.delivered, 40);
        assert_eq!(d7.queue_depth, 6);
        assert_eq!(d7.log_len, 55);
        assert_eq!(d7.unacked, 4);
        assert_eq!(d7.retransmits, 3);
        assert_eq!(d7.compactions, 2);
        assert!(d7.fsync_p99_ns > 0);
        // Document 0 holds the untagged rollup series.
        assert_eq!(rows[0].delivered, 100);
    }

    #[test]
    fn rows_against_a_previous_scrape_are_interval_deltas() {
        let earlier = sample();
        let mut later = sample();
        later.at_ns = 4_000_000_000;
        later.counters.insert("server.delivered.doc7".into(), 90);
        let rows = doc_rows(&later, Some(&earlier));
        let d7 = rows.iter().find(|r| r.doc == 7).expect("doc 7 row");
        assert_eq!(d7.delivered, 50);
        // Gauges stay absolute.
        assert_eq!(d7.log_len, 55);
    }

    #[test]
    fn table_renders_one_line_per_document() {
        let report = sample();
        let rows = doc_rows(&report, None);
        let table = render_table(&report, &rows, None);
        assert!(table.contains("DELIVERED"));
        assert!(table.contains("cumulative"));
        assert_eq!(table.lines().count(), 3 + rows.len());
    }
}
